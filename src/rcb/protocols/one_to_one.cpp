#include "rcb/protocols/one_to_one.hpp"

#include <array>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

OneToOneParams OneToOneParams::theory(double eps) {
  OneToOneParams p;
  p.eps = eps;
  p.first_epoch_offset = 11;
  return p;
}

OneToOneParams OneToOneParams::sim(double eps) {
  OneToOneParams p;
  p.eps = eps;
  p.first_epoch_offset = 2;
  return p;
}

std::uint32_t OneToOneParams::first_epoch() const {
  RCB_REQUIRE(eps > 0.0 && eps < 1.0);
  const double lg_ln = std::log2(std::log(8.0 / eps));
  const auto bump = static_cast<std::uint32_t>(std::ceil(std::max(0.0, lg_ln)));
  return first_epoch_offset + bump;
}

double OneToOneParams::slot_probability(std::uint32_t epoch) const {
  RCB_REQUIRE(epoch >= 1);
  const double ln8e = std::log(8.0 / eps);
  const double half_slots = static_cast<double>(pow2(epoch - 1));
  return clamp_probability(std::sqrt(ln8e / half_slots));
}

double OneToOneParams::halt_threshold(std::uint32_t epoch) const {
  const double half_slots = static_cast<double>(pow2(epoch - 1));
  return halt_threshold_factor * slot_probability(epoch) * half_slots;
}

namespace {

// Node rows in the engine's action table.
constexpr NodeId kAlice = 0;
constexpr NodeId kBob = 1;
constexpr NodeId kSpoofer = 2;

}  // namespace

OneToOneResult run_one_to_one(const OneToOneParams& params,
                              DuelAdversary& adversary, Rng& rng,
                              FaultPlan* faults) {
  OneToOneResult result;
  bool alice_running = true;
  bool bob_running = true;
  bool bob_informed = false;
  if (faults != nullptr && !faults->active()) faults = nullptr;

  // Partition 0 = Alice's channel view, partition 1 = Bob's.  The spoofer
  // transmits into the shared channel and never listens; its partition
  // assignment is immaterial.
  const std::array<std::uint32_t, 3> partition = {0, 1, 0};

  std::uint32_t epoch = params.first_epoch();
  for (; epoch <= params.max_epoch && (alice_running || bob_running); ++epoch) {
    // Wall-clock abort: give up rather than escalate into the next epoch.
    if (params.timeout_slots > 0 && result.latency >= params.timeout_slots) {
      result.aborted = true;
      break;
    }
    result.final_epoch = epoch;
    const SlotCount num_slots = pow2(epoch);
    const double p = params.slot_probability(epoch);
    const double theta = params.halt_threshold(epoch);

    // ---- SEND phase: Alice transmits m, Bob listens. -------------------
    {
      DuelPhaseContext ctx{epoch, DuelPhase::kSend, num_slots, p,
                           alice_running, bob_running};
      DuelPlan plan = adversary.plan(ctx, rng);

      std::array<NodeAction, 3> actions = {};
      if (alice_running) {
        actions[kAlice] = NodeAction{p, Payload::kMessage, 0.0};
      }
      if (bob_running) {
        actions[kBob] = NodeAction{0.0, Payload::kNoise, p};
      }
      const std::array<JamSchedule, 2> views = {plan.alice_view,
                                                plan.bob_view};
      RepetitionResult rep = run_repetition_luniform(
          num_slots, std::span<const NodeAction>(actions.data(), 3),
          std::span<const std::uint32_t>(partition.data(), 3),
          std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
          CcaModel{}, faults);

      result.latency += num_slots;
      result.adversary_cost +=
          plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
      result.alice_cost += rep.obs[kAlice].sends;

      if (bob_running) {
        const NodeObservation& bob = rep.obs[kBob];
        if (bob.messages > 0) {
          // Bob powers down the instant he receives m.
          result.bob_cost += bob.listens_until_first_message;
          bob_informed = true;
          bob_running = false;
        } else {
          result.bob_cost += bob.listens;
          if (static_cast<double>(bob.noise) < theta) {
            // Little jamming and no message: Alice must have halted.
            bob_running = false;
          }
        }
      }
    }

    if (!alice_running && !bob_running) break;

    // ---- NACK phase: uninformed Bob transmits nacks, Alice listens. ----
    {
      DuelPhaseContext ctx{epoch, DuelPhase::kNack, num_slots, p,
                           alice_running, bob_running};
      DuelPlan plan = adversary.plan(ctx, rng);

      std::array<NodeAction, 3> actions = {};
      if (bob_running && !bob_informed) {
        actions[kBob] = NodeAction{p, Payload::kNack, 0.0};
      }
      if (alice_running) {
        actions[kAlice] = NodeAction{0.0, Payload::kNoise, p};
      }
      if (plan.spoof_nack_prob > 0.0) {
        actions[kSpoofer] =
            NodeAction{plan.spoof_nack_prob, Payload::kNack, 0.0};
      }
      const std::array<JamSchedule, 2> views = {plan.alice_view,
                                                plan.bob_view};
      RepetitionResult rep = run_repetition_luniform(
          num_slots, std::span<const NodeAction>(actions.data(), 3),
          std::span<const std::uint32_t>(partition.data(), 3),
          std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
          CcaModel{}, faults);

      result.latency += num_slots;
      result.adversary_cost +=
          plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
      // Spoofed transmissions cost the adversary one unit each.
      result.adversary_cost +=
          adversary.budget().take(rep.obs[kSpoofer].sends);
      result.bob_cost += rep.obs[kBob].sends;

      if (alice_running) {
        const NodeObservation& alice = rep.obs[kAlice];
        result.alice_cost += alice.listens;
        if (alice.nacks == 0 &&
            static_cast<double>(alice.noise) < theta) {
          // No nack and a quiet channel: Bob is informed or gone.
          alice_running = false;
        }
      }
    }
  }

  result.hit_epoch_cap = !result.aborted && (alice_running || bob_running);
  result.alice_halted = !alice_running;
  result.bob_halted = !bob_running;
  result.delivered = bob_informed;
  return result;
}

}  // namespace rcb
