// The "extension of Theorem 1" 1-to-n baseline.
//
// The paper notes (before Theorem 3) that "a cost of roughly O(sqrt(T)) (in
// expectation) can be obtained via an extension of Theorem 1" — simply run
// the Figure-1 protocol with all n receivers playing Bob's role at once:
//
//   SEND phase: the sender transmits m w.p. p_i per slot; every uninformed
//   receiver listens w.p. p_i.  A receiver that hears m halts; one that
//   hears little jamming and no m concludes the sender is gone and halts.
//
//   NACK phase: every uninformed receiver transmits a nack w.p. p_i; the
//   sender listens w.p. p_i.  Colliding nacks are heard as noise, which is
//   just as informative: *any* non-clear slot means someone may still be
//   uninformed, so the sender only halts after a quiet nack phase.
//
// Every node's cost is Theta(sqrt(T)) — the point of this baseline is that
// it gains nothing from n, unlike Figure 2's sqrt(T/n): benches E4/E6 plot
// them side by side.
#pragma once

#include "rcb/adversary/strategies.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/one_to_one.hpp"

namespace rcb {

/// Runs the sqrt(T) baseline with n nodes (node 0 is the sender) against a
/// 1-uniform repetition adversary; the epoch schedule and thresholds come
/// from OneToOneParams.  Results reuse BroadcastNResult (statuses are
/// kUninformed/kInformed/kTerminated).
BroadcastNResult run_sqrt_broadcast(std::uint32_t n,
                                    const OneToOneParams& params,
                                    RepetitionAdversary& adversary, Rng& rng,
                                    FaultPlan* faults = nullptr);

}  // namespace rcb
