#include "rcb/protocols/combined.hpp"

#include <array>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

constexpr NodeId kAlice = 0;
constexpr NodeId kBob = 1;
constexpr NodeId kSpoofer = 2;
constexpr std::array<std::uint32_t, 3> kPartition = {0, 1, 0};

/// Shared bookkeeping for one interleaved execution.
struct Shared {
  OneToOneResult result;
  bool bob_informed = false;
};

/// One Fig.1 epoch (send + nack phase); mirrors run_one_to_one's body.
struct Fig1Stream {
  const OneToOneParams* params;
  std::uint32_t epoch;
  bool alice_running = true;
  bool bob_running = true;

  explicit Fig1Stream(const OneToOneParams& p)
      : params(&p), epoch(p.first_epoch()) {}

  bool active() const { return alice_running || bob_running; }

  void step(DuelAdversary& adversary, Rng& rng, Shared& sh,
            FaultPlan* faults) {
    if (epoch > params->max_epoch) {
      alice_running = bob_running = false;
      return;
    }
    const SlotCount num_slots = pow2(epoch);
    const double p = params->slot_probability(epoch);
    const double theta = params->halt_threshold(epoch);

    {  // send phase
      DuelPhaseContext ctx{epoch, DuelPhase::kSend, num_slots, p,
                           alice_running, bob_running};
      DuelPlan plan = adversary.plan(ctx, rng);
      std::array<NodeAction, 3> actions = {};
      if (alice_running) actions[kAlice] = NodeAction{p, Payload::kMessage, 0.0};
      if (bob_running) actions[kBob] = NodeAction{0.0, Payload::kNoise, p};
      const std::array<JamSchedule, 2> views = {plan.alice_view, plan.bob_view};
      auto rep = run_repetition_luniform(
          num_slots, std::span<const NodeAction>(actions.data(), 3),
          std::span<const std::uint32_t>(kPartition.data(), 3),
          std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
        CcaModel{}, faults);
      sh.result.latency += num_slots;
      sh.result.adversary_cost +=
          plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
      sh.result.alice_cost += rep.obs[kAlice].sends;
      if (bob_running) {
        const auto& bob = rep.obs[kBob];
        if (bob.messages > 0) {
          sh.result.bob_cost += bob.listens_until_first_message;
          sh.bob_informed = true;
          bob_running = false;
        } else {
          sh.result.bob_cost += bob.listens;
          if (static_cast<double>(bob.noise) < theta) bob_running = false;
        }
      }
    }
    if (!alice_running && !bob_running) return;
    {  // nack phase
      DuelPhaseContext ctx{epoch, DuelPhase::kNack, num_slots, p,
                           alice_running, bob_running};
      DuelPlan plan = adversary.plan(ctx, rng);
      std::array<NodeAction, 3> actions = {};
      if (bob_running && !sh.bob_informed) {
        actions[kBob] = NodeAction{p, Payload::kNack, 0.0};
      }
      if (alice_running) actions[kAlice] = NodeAction{0.0, Payload::kNoise, p};
      if (plan.spoof_nack_prob > 0.0) {
        actions[kSpoofer] = NodeAction{plan.spoof_nack_prob, Payload::kNack, 0.0};
      }
      const std::array<JamSchedule, 2> views = {plan.alice_view, plan.bob_view};
      auto rep = run_repetition_luniform(
          num_slots, std::span<const NodeAction>(actions.data(), 3),
          std::span<const std::uint32_t>(kPartition.data(), 3),
          std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
        CcaModel{}, faults);
      sh.result.latency += num_slots;
      sh.result.adversary_cost +=
          plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
      sh.result.adversary_cost += adversary.budget().take(rep.obs[kSpoofer].sends);
      sh.result.bob_cost += rep.obs[kBob].sends;
      if (alice_running) {
        const auto& alice = rep.obs[kAlice];
        sh.result.alice_cost += alice.listens;
        if (alice.nacks == 0 && static_cast<double>(alice.noise) < theta) {
          alice_running = false;
        }
      }
    }
    ++epoch;
  }
};

/// One KSY epoch; mirrors run_ksy's body.
struct KsyStream {
  const KsyParams* params;
  std::uint32_t epoch;
  bool alice_running = true;
  bool bob_running = true;

  explicit KsyStream(const KsyParams& p) : params(&p), epoch(p.first_epoch) {}

  bool active() const { return alice_running || bob_running; }

  void step(DuelAdversary& adversary, Rng& rng, Shared& sh,
            FaultPlan* faults) {
    if (epoch > params->max_epoch) {
      alice_running = bob_running = false;
      return;
    }
    const SlotCount num_slots = pow2(epoch);
    const double pa = params->alice_send_prob(epoch);
    const double pl = params->alice_listen_prob(epoch);
    const double pb = params->bob_listen_prob(epoch);

    DuelPhaseContext ctx{epoch, DuelPhase::kSend, num_slots, pa, alice_running,
                         bob_running};
    DuelPlan plan = adversary.plan(ctx, rng);
    std::array<NodeAction, 3> actions = {};
    if (alice_running) actions[kAlice] = NodeAction{pa, Payload::kMessage, pl};
    if (bob_running) actions[kBob] = NodeAction{0.0, Payload::kNoise, pb};
    if (plan.spoof_nack_prob > 0.0) {
      actions[kSpoofer] = NodeAction{plan.spoof_nack_prob, Payload::kNack, 0.0};
    }
    const std::array<JamSchedule, 2> views = {plan.alice_view, plan.bob_view};
    auto rep = run_repetition_luniform(
        num_slots, std::span<const NodeAction>(actions.data(), 3),
        std::span<const std::uint32_t>(kPartition.data(), 3),
        std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
        CcaModel{}, faults);
    sh.result.latency += num_slots;
    sh.result.adversary_cost +=
        plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
    sh.result.adversary_cost += adversary.budget().take(rep.obs[kSpoofer].sends);

    if (alice_running) {
      const auto& alice = rep.obs[kAlice];
      sh.result.alice_cost += alice.sends + alice.listens;
      const double heard = static_cast<double>(alice.heard_total());
      const double noisy = static_cast<double>(alice.noise + alice.nacks);
      if (heard == 0.0 || noisy / heard < params->noise_fraction_threshold) {
        alice_running = false;
      }
    }
    if (bob_running) {
      const auto& bob = rep.obs[kBob];
      if (bob.messages > 0) {
        sh.result.bob_cost += bob.listens_until_first_message;
        sh.bob_informed = true;
        bob_running = false;
      } else {
        sh.result.bob_cost += bob.listens;
        const double heard = static_cast<double>(bob.heard_total());
        const double noisy = static_cast<double>(bob.noise + bob.nacks);
        if (heard == 0.0 || noisy / heard < params->noise_fraction_threshold) {
          bob_running = false;
        }
      }
    }
    ++epoch;
  }
};

}  // namespace

OneToOneResult run_combined(const CombinedParams& params,
                            DuelAdversary& adversary, Rng& rng,
                            FaultPlan* faults) {
  Shared sh;
  Fig1Stream fig1(params.fig1);
  KsyStream ksy(params.ksy);
  if (faults != nullptr && !faults->active()) faults = nullptr;

  // A party halts overall as soon as either stream halts it; once Bob is
  // informed through either stream he stops listening in both.
  while (true) {
    const bool alice_running = fig1.alice_running && ksy.alice_running;
    const bool bob_running =
        !sh.bob_informed && (fig1.bob_running && ksy.bob_running);
    if (!alice_running && !bob_running) break;
    if (params.timeout_slots > 0 && sh.result.latency >= params.timeout_slots) {
      sh.result.aborted = true;
      break;
    }

    // Propagate halting decisions across streams.
    fig1.alice_running = ksy.alice_running = alice_running;
    fig1.bob_running = ksy.bob_running = bob_running;

    sh.result.final_epoch = fig1.epoch;
    fig1.step(adversary, rng, sh, faults);

    // Bob may have been informed by the Fig.1 step; silence him in KSY.
    if (sh.bob_informed) ksy.bob_running = false;

    ksy.step(adversary, rng, sh, faults);

    // Hard stop if both streams ran off their epoch caps.
    if (fig1.epoch > params.fig1.max_epoch && ksy.epoch > params.ksy.max_epoch) {
      sh.result.hit_epoch_cap = true;
      break;
    }
  }

  sh.result.alice_halted = !(fig1.alice_running && ksy.alice_running);
  sh.result.bob_halted = sh.bob_informed || !(fig1.bob_running && ksy.bob_running);
  sh.result.delivered = sh.bob_informed;
  return sh.result;
}

}  // namespace rcb
