// The Theorem-2 lower-bound adversary.
//
// Theorem 2's proof commits the adversary to a simple rule: announce a
// budget T, then jam a slot if and only if the product of Alice's send
// probability and Bob's listen probability in that slot exceeds 1/T and
// budget remains.  Against this rule, any pair strategy satisfies
// E(A)·E(B) >= (1 - O(eps)) T.  Bench E3 replays the proof's "strategy
// (ii)" (stay just below the threshold) and "strategy (i)" (exhaust the
// budget, then shout) and measures the product.
#pragma once

#include "rcb/adversary/budget.hpp"
#include "rcb/common/types.hpp"

namespace rcb {

class ThresholdAdversary {
 public:
  explicit ThresholdAdversary(Cost announced_budget);

  /// Decides slot-by-slot given the pair's (public, per the proof's
  /// assumptions) probabilities for this slot.
  bool jam(double alice_prob, double bob_prob);

  Cost announced_budget() const { return announced_; }
  Cost spent() const { return budget_.spent(); }

 private:
  Cost announced_;
  Budget budget_;
};

}  // namespace rcb
