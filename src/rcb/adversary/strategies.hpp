// 1-uniform jamming strategies for the 1-to-n broadcast protocol.
//
// Per Lemma 1, an adaptive adversary is WLOG one that commits, at the start
// of each repetition, to jamming a suffix of its slots — it may pick the
// suffix length using everything publicly observable so far.  The
// RepetitionAdversary interface captures exactly that power: plan() is
// called once per repetition with the public context and returns a
// JamSchedule.  Genuinely reactive (slot-by-slot) adversaries live in
// sim/slot_engine.hpp and are compared against these in bench E10.
#pragma once

#include <memory>

#include "rcb/adversary/budget.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/jam_schedule.hpp"

namespace rcb {

/// Public information available to the adversary when planning a repetition.
struct RepetitionContext {
  std::uint32_t epoch = 0;       ///< epoch index i
  std::uint64_t repetition = 0;  ///< repetition index within the epoch
  std::uint64_t repetitions_in_epoch = 0;
  SlotCount num_slots = 0;       ///< 2^i
};

/// Interface for budgeted repetition-level adversaries.
class RepetitionAdversary {
 public:
  explicit RepetitionAdversary(Budget budget) : budget_(budget) {}
  virtual ~RepetitionAdversary() = default;

  /// Commits to the jam schedule for the coming repetition.  The strategy
  /// must draw its spend from budget() — the returned schedule's
  /// jammed_count() is what the driver charges to the adversary ledger.
  virtual JamSchedule plan(const RepetitionContext& ctx, Rng& rng) = 0;

  Budget& budget() { return budget_; }
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
};

/// Never jams (the T = 0 efficiency-function scenario).
class NoJamAdversary final : public RepetitionAdversary {
 public:
  NoJamAdversary() : RepetitionAdversary(Budget(0)) {}
  JamSchedule plan(const RepetitionContext& ctx, Rng& rng) override;
};

/// q-blocks every repetition (Definition 1) until the budget runs out:
/// jams the last ceil(q * num_slots) slots of each repetition.  This is the
/// canonical Lemma-1 adversary the upper-bound proofs reason about.
class SuffixBlockerAdversary final : public RepetitionAdversary {
 public:
  SuffixBlockerAdversary(Budget budget, double q);
  JamSchedule plan(const RepetitionContext& ctx, Rng& rng) override;

 private:
  double q_;
};

/// q-blocks a fixed fraction of the repetitions in each epoch (chosen
/// uniformly at random), leaving the rest untouched — the "1/10-block a
/// constant fraction of repetitions" shape from the Theorem 3 analysis.
class EpochFractionBlockerAdversary final : public RepetitionAdversary {
 public:
  EpochFractionBlockerAdversary(Budget budget, double q,
                                double repetition_fraction);
  JamSchedule plan(const RepetitionContext& ctx, Rng& rng) override;

 private:
  double q_;
  double fraction_;
};

/// Jams each slot independently with a fixed rate (non-adaptive noise; also
/// a model for environmental interference).
class RandomJammerAdversary final : public RepetitionAdversary {
 public:
  RandomJammerAdversary(Budget budget, double rate);
  JamSchedule plan(const RepetitionContext& ctx, Rng& rng) override;

 private:
  double rate_;
};

/// Jams periodic bursts: `burst_len` consecutive slots every `period` slots.
class BurstJammerAdversary final : public RepetitionAdversary {
 public:
  BurstJammerAdversary(Budget budget, SlotCount burst_len, SlotCount period);
  JamSchedule plan(const RepetitionContext& ctx, Rng& rng) override;

 private:
  SlotCount burst_len_;
  SlotCount period_;
};

}  // namespace rcb
