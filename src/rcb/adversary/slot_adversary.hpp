// Slot-level adaptive adversary interface (the genuinely reactive model).
//
// The batch engine in sim/repetition_engine.hpp restricts adversaries to the
// Lemma-1 canonical form: commit to a jam schedule before the phase, given
// only public history.  A SlotAdversary is strictly stronger — it is
// consulted before *every* slot and sees the full physical trace of the
// phase so far (who transmitted, what it jammed).  sim/slot_engine.hpp runs
// this model; bench E10 uses it to validate Lemma 1 empirically.
//
// History contract (what `jam` may rely on):
//   * `history` holds one SlotActivity record per elapsed slot of the
//     current phase, in slot order, *including* slots in which nobody
//     transmitted (materialized as zero-sender records) — history.size()
//     equals the current slot index unless the adversary bounds its window.
//   * Listening is passive and invisible: records expose transmissions and
//     the adversary's own jamming only.
//   * An adversary that only inspects a bounded suffix of the history (most
//     reactive strategies look at the last slot or two) should override
//     history_window() to return that bound.  The engine then materializes
//     only the trailing `history_window()` records, keeping its bookkeeping
//     O(window) instead of O(num_slots) — `history` is the suffix and
//     history.size() may be smaller than the slot index.  Returning 0 means
//     the adversary is oblivious to history (time-triggered or randomized
//     strategies) and always receives an empty span.
// Bulk consultation (the engine fast path):
//   Most of a phase is *eventless* — nobody sends or listens.  For a maximal
//   eventless run of slots the engine may call jam_run() once instead of
//   jam() per slot.  Answering is optional (the default declines, and the
//   engine falls back to per-slot jam() calls, bit-identical to the
//   one-call-per-slot contract); an adversary that answers must produce
//   exactly the decisions repeated jam() calls would have produced, where
//   each elapsed run slot appears in the materialized history as a
//   zero-sender record carrying the adversary's own decision.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "rcb/common/contracts.hpp"
#include "rcb/common/types.hpp"

namespace rcb {

/// What the adversary can observe about an elapsed slot: transmissions are
/// physically detectable, listening is passive and invisible.
struct SlotActivity {
  SlotIndex slot = 0;
  std::uint32_t senders = 0;
  bool jammed = false;
};

/// Run-length-encoded per-slot decisions for one eventless run, filled by
/// the bulk consultation hooks (SlotAdversary::jam_run emits bools,
/// McSlotAdversary::jam_run_masks emits 64-bit channel masks).  Capacity is
/// deliberately small: a strategy whose decisions over an eventless run
/// need more than kMaxSegments alternations should decline the call
/// (append() returns false) and let the engine drive it slot by slot.
template <typename Decision>
class RunSink {
 public:
  static constexpr std::size_t kMaxSegments = 64;

  struct Segment {
    SlotCount length;
    Decision decision;
  };

  /// Appends `length` slots with one decision; adjacent same-decision
  /// segments merge.  Returns false (sink unchanged) when capacity is
  /// exhausted — the caller should then decline the bulk call.
  bool append(SlotCount length, Decision decision) {
    if (length == 0) return true;
    if (count_ > 0 && segments_[count_ - 1].decision == decision) {
      segments_[count_ - 1].length += length;
    } else {
      if (count_ == kMaxSegments) return false;
      segments_[count_++] = Segment{length, decision};
    }
    total_ += length;
    return true;
  }

  std::span<const Segment> segments() const { return {segments_.data(), count_}; }
  SlotCount total() const { return total_; }

  void reset() {
    count_ = 0;
    total_ = 0;
  }

 private:
  std::array<Segment, kMaxSegments> segments_;
  std::size_t count_ = 0;
  SlotCount total_ = 0;
};

/// Single-channel bulk decisions: one bool (jam / don't) per run slot.
using JamRunSink = RunSink<bool>;

/// Multi-channel bulk decisions: one 64-bit jam mask per run slot (bit c
/// jams channel c — the same value jam_mask() would have returned).
using McJamRunSink = RunSink<std::uint64_t>;

/// Adversary interface for the slotwise engine.
class SlotAdversary {
 public:
  /// history_window() value meaning "materialize every elapsed slot".
  static constexpr SlotCount kUnboundedHistory = UINT64_MAX;

  virtual ~SlotAdversary() = default;

  /// Called once per slot in order.  `history` holds the activity of the
  /// previous slots of this phase (see the history contract above).  Return
  /// true to jam `slot`.
  virtual bool jam(SlotIndex slot, std::span<const SlotActivity> history) = 0;

  /// Optional bulk form of jam() for a maximal eventless run [begin, end):
  /// no node sends or listens in any slot of the run, so every run slot's
  /// history record is {slot, 0, <own decision>}.  `history` is the state
  /// as of `begin` (same view jam(begin, ...) would receive).  To answer,
  /// append decisions for exactly end - begin slots (in slot order) to
  /// `sink`, advance any internal state exactly as per-slot jam() calls
  /// would have, and return true.  To decline — the default — return false
  /// *without mutating any state*; the engine then issues the per-slot
  /// jam() calls itself.  Answering is a pure optimization: decisions must
  /// be identical to the per-slot path's, and the engine enforces
  /// sink.total() == end - begin.
  virtual bool jam_run(SlotIndex begin, SlotIndex end,
                       std::span<const SlotActivity> history,
                       JamRunSink& sink) {
    (void)begin;
    (void)end;
    (void)history;
    (void)sink;
    return false;
  }

  /// Upper bound on how many trailing history records jam() inspects.
  /// Defaults to unbounded; override for O(1)-lookback strategies so the
  /// engine can bound its history buffer.
  virtual SlotCount history_window() const { return kUnboundedHistory; }
};

/// Multi-channel analogue of SlotActivity: the per-channel physical trace
/// of one elapsed slot, as 64-bit channel masks (bit c = channel c).
/// Listening stays passive and invisible, exactly as in the single-channel
/// model.
struct McSlotActivity {
  SlotIndex slot = 0;
  /// Channels that carried at least one transmission.
  std::uint64_t sender_channels = 0;
  /// Channels the adversary jammed (its own decision, echoed back).
  std::uint64_t jam_mask = 0;
  /// Total transmitting nodes across all channels.
  std::uint32_t senders = 0;
};

/// Adversary interface for the multi-channel slotwise engine
/// (sim/mc_slot_engine.hpp).  The jamming budget splits across channels:
/// each jammed (slot, channel) pair costs one budget unit, so jamming k
/// channels of one slot costs k — the Chen–Zheng accounting.
class McSlotAdversary {
 public:
  /// history_window() value meaning "materialize every elapsed slot".
  static constexpr SlotCount kUnboundedHistory = UINT64_MAX;

  virtual ~McSlotAdversary() = default;

  /// Called once per slot in order.  Bit c of the returned mask jams
  /// channel c of `slot`.  Bits at or above `num_channels` are ignored by
  /// the engines (strategies must not spend budget on them); every
  /// remaining set bit is charged as one budget unit in the per-channel
  /// accounting.  The history contract mirrors SlotAdversary::jam.
  virtual std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                                 std::span<const McSlotActivity> history) = 0;

  /// Optional bulk form of jam_mask() for a maximal eventless run
  /// [begin, end): no node sends or listens in any slot of the run, so every
  /// run slot's history record is {slot, 0, <own mask>, 0}.  `history` is
  /// the state as of `begin` (the same view jam_mask(begin, ...) would
  /// receive).  To answer, append masks for exactly end - begin slots (in
  /// slot order) to `sink`, advance any internal state (rng, budget) exactly
  /// as per-slot jam_mask() calls would have, and return true.  To decline —
  /// the default — return false *without mutating any state*; the engine
  /// then issues the per-slot jam_mask() calls itself.  Answering is a pure
  /// optimization: masks must be identical to the per-slot path's, and the
  /// engine enforces sink.total() == end - begin.
  virtual bool jam_run_masks(SlotIndex begin, SlotIndex end,
                             std::uint32_t num_channels,
                             std::span<const McSlotActivity> history,
                             McJamRunSink& sink) {
    (void)begin;
    (void)end;
    (void)num_channels;
    (void)history;
    (void)sink;
    return false;
  }

  /// Upper bound on how many trailing history records jam_mask() inspects;
  /// same contract as SlotAdversary::history_window.
  virtual SlotCount history_window() const { return kUnboundedHistory; }
};

}  // namespace rcb
