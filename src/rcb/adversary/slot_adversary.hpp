// Slot-level adaptive adversary interface (the genuinely reactive model).
//
// The batch engine in sim/repetition_engine.hpp restricts adversaries to the
// Lemma-1 canonical form: commit to a jam schedule before the phase, given
// only public history.  A SlotAdversary is strictly stronger — it is
// consulted before *every* slot and sees the full physical trace of the
// phase so far (who transmitted, what it jammed).  sim/slot_engine.hpp runs
// this model; bench E10 uses it to validate Lemma 1 empirically.
//
// History contract (what `jam` may rely on):
//   * `history` holds one SlotActivity record per elapsed slot of the
//     current phase, in slot order, *including* slots in which nobody
//     transmitted (materialized as zero-sender records) — history.size()
//     equals the current slot index unless the adversary bounds its window.
//   * Listening is passive and invisible: records expose transmissions and
//     the adversary's own jamming only.
//   * An adversary that only inspects a bounded suffix of the history (most
//     reactive strategies look at the last slot or two) should override
//     history_window() to return that bound.  The engine then materializes
//     only the trailing `history_window()` records, keeping its bookkeeping
//     O(window) instead of O(num_slots) — `history` is the suffix and
//     history.size() may be smaller than the slot index.  Returning 0 means
//     the adversary is oblivious to history (time-triggered or randomized
//     strategies) and always receives an empty span.
#pragma once

#include <cstdint>
#include <span>

#include "rcb/common/types.hpp"

namespace rcb {

/// What the adversary can observe about an elapsed slot: transmissions are
/// physically detectable, listening is passive and invisible.
struct SlotActivity {
  SlotIndex slot = 0;
  std::uint32_t senders = 0;
  bool jammed = false;
};

/// Adversary interface for the slotwise engine.
class SlotAdversary {
 public:
  /// history_window() value meaning "materialize every elapsed slot".
  static constexpr SlotCount kUnboundedHistory = UINT64_MAX;

  virtual ~SlotAdversary() = default;

  /// Called once per slot in order.  `history` holds the activity of the
  /// previous slots of this phase (see the history contract above).  Return
  /// true to jam `slot`.
  virtual bool jam(SlotIndex slot, std::span<const SlotActivity> history) = 0;

  /// Upper bound on how many trailing history records jam() inspects.
  /// Defaults to unbounded; override for O(1)-lookback strategies so the
  /// engine can bound its history buffer.
  virtual SlotCount history_window() const { return kUnboundedHistory; }
};

}  // namespace rcb
