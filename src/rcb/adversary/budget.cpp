// Budget is header-only; this translation unit exists so the target has a
// stable home for future out-of-line additions.
#include "rcb/adversary/budget.hpp"
