#include "rcb/adversary/two_uniform.hpp"

#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"

namespace rcb {
namespace {

/// Takes up to ceil(q * num_slots) from the budget and returns the
/// corresponding suffix schedule.
JamSchedule budgeted_suffix(Budget& budget, SlotCount num_slots, double q) {
  const auto want =
      static_cast<Cost>(std::ceil(q * static_cast<double>(num_slots)));
  const Cost got = budget.take(want);
  if (got == 0) return JamSchedule::none();
  return JamSchedule::suffix(num_slots, num_slots - got);
}

JamSchedule budgeted_random(Budget& budget, SlotCount num_slots, double rate,
                            Rng& rng) {
  std::vector<SlotIndex> jammed;
  sample_bernoulli_slots(num_slots, rate, rng, jammed);
  const Cost got = budget.take(jammed.size());
  jammed.resize(got);
  return JamSchedule::slots(num_slots, std::move(jammed));
}

}  // namespace

DuelPlan DuelNoJam::plan(const DuelPhaseContext&, Rng&) { return DuelPlan{}; }

SendPhaseBlocker::SendPhaseBlocker(Budget budget, double q)
    : DuelAdversary(budget), q_(q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
}

DuelPlan SendPhaseBlocker::plan(const DuelPhaseContext& ctx, Rng&) {
  DuelPlan plan;
  if (ctx.phase == DuelPhase::kSend && ctx.bob_running) {
    plan.bob_view = budgeted_suffix(budget(), ctx.num_slots, q_);
  }
  return plan;
}

NackPhaseBlocker::NackPhaseBlocker(Budget budget, double q)
    : DuelAdversary(budget), q_(q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
}

DuelPlan NackPhaseBlocker::plan(const DuelPhaseContext& ctx, Rng&) {
  DuelPlan plan;
  if (ctx.phase == DuelPhase::kNack && ctx.alice_running) {
    plan.alice_view = budgeted_suffix(budget(), ctx.num_slots, q_);
  }
  return plan;
}

FullDuelBlocker::FullDuelBlocker(Budget budget, double q)
    : DuelAdversary(budget), q_(q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
}

DuelPlan FullDuelBlocker::plan(const DuelPhaseContext& ctx, Rng&) {
  DuelPlan plan;
  if (ctx.phase == DuelPhase::kSend) {
    if (ctx.bob_running) {
      plan.bob_view = budgeted_suffix(budget(), ctx.num_slots, q_);
    }
  } else {
    if (ctx.alice_running) {
      plan.alice_view = budgeted_suffix(budget(), ctx.num_slots, q_);
    }
    // Bob must also observe jamming in phases where he might otherwise
    // conclude the exchange is over; jamming his nack-phase view is wasted
    // energy though, since he transmits rather than listens there.
  }
  return plan;
}

BothViewsSuffixBlocker::BothViewsSuffixBlocker(Budget budget, double q)
    : DuelAdversary(budget), q_(q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
}

DuelPlan BothViewsSuffixBlocker::plan(const DuelPhaseContext& ctx, Rng&) {
  DuelPlan plan;
  if (ctx.alice_running) {
    plan.alice_view = budgeted_suffix(budget(), ctx.num_slots, q_);
  }
  if (ctx.bob_running) {
    plan.bob_view = budgeted_suffix(budget(), ctx.num_slots, q_);
  }
  return plan;
}

SymmetricRandomDuelJammer::SymmetricRandomDuelJammer(Budget budget, double rate)
    : DuelAdversary(budget), rate_(rate) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

DuelPlan SymmetricRandomDuelJammer::plan(const DuelPhaseContext& ctx,
                                         Rng& rng) {
  DuelPlan plan;
  plan.alice_view = budgeted_random(budget(), ctx.num_slots, rate_, rng);
  plan.bob_view = budgeted_random(budget(), ctx.num_slots, rate_, rng);
  return plan;
}

}  // namespace rcb
