// 2-uniform adversaries for the 1-to-1 (Alice/Bob) protocols.
//
// A 2-uniform adversary (paper section 1.2) may jam Alice's and Bob's
// channel views independently; each jammed (slot, view) pair costs one
// unit.  In addition, the Theorem-5 adversary may transmit spoofed nack
// messages indistinguishable from Bob's — modelled here as an extra
// transmitter with a per-slot spoof probability whose sends are charged to
// the adversary.
//
// The DuelPhaseContext deliberately exposes more than a physical adversary
// could observe (whether each party is still running).  Our adversaries are
// used to stress *upper bound* claims, and a strictly stronger adversary
// only makes those measurements conservative.
#pragma once

#include "rcb/adversary/budget.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/jam_schedule.hpp"

namespace rcb {

/// Which half of a 1-to-1 epoch is being planned.
enum class DuelPhase : std::uint8_t { kSend, kNack };

/// Public context for planning one phase of the 1-to-1 protocol.
struct DuelPhaseContext {
  std::uint32_t epoch = 0;
  DuelPhase phase = DuelPhase::kSend;
  SlotCount num_slots = 0;
  /// The protocol's per-slot send/listen probability p_i for this epoch.
  /// The protocol is public knowledge, so the adversary may use it.
  double protocol_prob = 0.0;
  bool alice_running = true;
  bool bob_running = true;
};

/// The adversary's commitment for one phase.
struct DuelPlan {
  JamSchedule alice_view = JamSchedule::none();  ///< jams Alice's partition
  JamSchedule bob_view = JamSchedule::none();    ///< jams Bob's partition
  /// Per-slot probability of transmitting a spoofed nack (Theorem 5 power;
  /// only meaningful in nack phases).  Spoofed sends cost the adversary one
  /// unit each.
  double spoof_nack_prob = 0.0;
};

/// Interface for budgeted 2-uniform adversaries.
class DuelAdversary {
 public:
  explicit DuelAdversary(Budget budget) : budget_(budget) {}
  virtual ~DuelAdversary() = default;

  virtual DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) = 0;

  Budget& budget() { return budget_; }
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
};

/// No interference at all.
class DuelNoJam final : public DuelAdversary {
 public:
  DuelNoJam() : DuelAdversary(Budget(0)) {}
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;
};

/// q-blocks Bob's view of every send phase (stops m) until broke.
class SendPhaseBlocker final : public DuelAdversary {
 public:
  SendPhaseBlocker(Budget budget, double q);
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;

 private:
  double q_;
};

/// q-blocks Alice's view of every nack phase (stops the nack and keeps
/// Alice running) until broke.
class NackPhaseBlocker final : public DuelAdversary {
 public:
  NackPhaseBlocker(Budget budget, double q);
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;

 private:
  double q_;
};

/// The canonical maximal attack: q-blocks Bob's view in send phases *and*
/// Alice's view in nack phases, so neither m nor the nack gets through and
/// both parties observe enough jamming to keep running.  Spends ~2q slots
/// per epoch slot-pair; forces both parties into epoch after epoch until
/// the budget dies.
class FullDuelBlocker final : public DuelAdversary {
 public:
  FullDuelBlocker(Budget budget, double q);
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;

 private:
  double q_;
};

/// q-blocks both views of every phase until broke.  Against protocols with
/// a single phase per epoch (the KSY baseline) this is the canonical
/// "force them into the next epoch" attack; against Fig. 1 it spends twice
/// what FullDuelBlocker does for the same effect.
class BothViewsSuffixBlocker final : public DuelAdversary {
 public:
  BothViewsSuffixBlocker(Budget budget, double q);
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;

 private:
  double q_;
};

/// Jams both views of all phases at rate q (symmetric noise floor).
class SymmetricRandomDuelJammer final : public DuelAdversary {
 public:
  SymmetricRandomDuelJammer(Budget budget, double rate);
  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;

 private:
  double rate_;
};

}  // namespace rcb
