// Multi-channel jamming strategies (Chen–Zheng budget-split model).
//
// A McSlotAdversary returns a per-slot channel mask; every jammed
// (slot, channel) pair costs one budget unit, so the strategy space is how
// to *split* the budget across channels: spread it thin (uniform), bet it
// all on one channel (focus), or chase the hoppers (sweep).  Every strategy
// here draws its spend from a Budget and never sets a bit it could not pay
// for, so an engine's jam_charges equals the strategy's budget spend — the
// invariant the per-channel energy-conservation oracle checks.
//
// Strategies that randomize own a private Rng (seeded by the caller, e.g.
// from (scenario seed, trial)) so a trial replays deterministically; the
// engines' trial Rng stream is never touched by adversary decisions.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/adversary/budget.hpp"
#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/jam_schedule.hpp"

namespace rcb {

/// Never jams (T = 0).
class McNoJam final : public McSlotAdversary {
 public:
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override { return 0; }
};

/// Uniform split: each slot, each channel is jammed independently with
/// probability `rate` while the budget lasts — the multi-channel analogue
/// of RandomJammerAdversary, spending ~rate * C per slot.
class McUniformSplitJammer final : public McSlotAdversary {
 public:
  McUniformSplitJammer(Budget budget, double rate, Rng rng);
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override { return 0; }
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
  double rate_;
  Rng rng_;
};

/// Concentrate on one: the whole budget goes to a single channel, jammed
/// with probability min(1, rate * C) per slot — the same expected spend as
/// the uniform split, but all on `target`.  Against non-hopping nodes this
/// is the strongest split; against uniform hoppers it blocks an expected
/// 1/C of the traffic.
class McFocusJammer final : public McSlotAdversary {
 public:
  McFocusJammer(Budget budget, double rate, std::uint32_t target, Rng rng);
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override { return 0; }
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
  double rate_;
  std::uint32_t target_;
  Rng rng_;
};

/// Sweep: jams channel (slot / dwell) mod C, dwelling `dwell` slots on each
/// channel before moving on, while the budget lasts.  Deterministic; the
/// classic scanning jammer multi-channel protocols must beat.
class McSweepJammer final : public McSlotAdversary {
 public:
  McSweepJammer(Budget budget, SlotCount dwell);
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override { return 0; }
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
  SlotCount dwell_;
};

/// Replays one committed JamSchedule per channel — the deterministic
/// adversary the multi-channel engine crosscheck drives both engines with
/// (its decisions are a pure function of the slot index, so event and
/// dense consultations agree exactly).  Unbudgeted: charges are whatever
/// the schedules say.
class McScheduleAdversary final : public McSlotAdversary {
 public:
  explicit McScheduleAdversary(std::vector<JamSchedule> per_channel);
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override { return 0; }

 private:
  std::vector<JamSchedule> per_channel_;
};

/// Adapts a single-channel SlotAdversary to the multi-channel interface:
/// channel 0 carries the inner adversary's decision, all other channels
/// stay clear.  With C=1 this is the exact bridge the degeneration oracle
/// uses to compare the multi-channel engines against the single-channel
/// ones — the inner adversary sees the same per-slot history (translated
/// record-for-record) it would see under run_repetition_slotwise.
class McFromSlotAdversary final : public McSlotAdversary {
 public:
  explicit McFromSlotAdversary(SlotAdversary& inner) : inner_(inner) {}
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override;
  bool jam_run_masks(SlotIndex begin, SlotIndex end,
                     std::uint32_t num_channels,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override;
  SlotCount history_window() const override {
    return inner_.history_window();
  }

 private:
  SlotAdversary& inner_;
  std::vector<SlotActivity> scratch_;
};

}  // namespace rcb
