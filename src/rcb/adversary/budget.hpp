// Adversary energy budgets.
//
// The paper's adversary has a finite but unknown budget T; lower bounds are
// phrased against an adversary with a fixed budget.  Budget tracks the spend
// and saturates take() requests so a strategy can never overspend.
#pragma once

#include <cstdint>
#include <limits>

#include "rcb/common/types.hpp"

namespace rcb {

class Budget {
 public:
  /// A budget that never runs out.
  static Budget unlimited() { return Budget(std::numeric_limits<Cost>::max()); }

  explicit Budget(Cost limit) : limit_(limit) {}

  /// Consumes up to `want` units; returns how much was actually granted.
  Cost take(Cost want) {
    const Cost grant = want < remaining() ? want : remaining();
    spent_ += grant;
    return grant;
  }

  Cost limit() const { return limit_; }
  Cost spent() const { return spent_; }
  Cost remaining() const { return limit_ - spent_; }
  bool exhausted() const { return spent_ >= limit_; }

 private:
  Cost limit_;
  Cost spent_ = 0;
};

}  // namespace rcb
