// The Theorem-5 spoofing adversary: "scenario (ii)" of the proof.
//
// Instead of jamming, the adversary takes Bob's place and simulates an
// uninformed Bob: in every nack phase it transmits nacks with exactly the
// protocol probability p_i.  A protocol that trusts nacks (Fig. 1) can
// never tell the exchange is finished, so Alice runs epoch after epoch
// while the adversary pays only the simulated Bob's cost — the measured
// Alice-cost-vs-T exponent degrades to ~1 (bench E7).  Protocols that never
// trust unauthenticated feedback (the KSY baseline) are immune.
#pragma once

#include "rcb/adversary/two_uniform.hpp"

namespace rcb {

class SpoofingNackAdversary final : public DuelAdversary {
 public:
  explicit SpoofingNackAdversary(Budget budget) : DuelAdversary(budget) {}

  DuelPlan plan(const DuelPhaseContext& ctx, Rng& rng) override;
};

}  // namespace rcb
