#include "rcb/adversary/spoofing.hpp"

#include <cmath>

namespace rcb {

DuelPlan SpoofingNackAdversary::plan(const DuelPhaseContext& ctx, Rng&) {
  DuelPlan plan;
  if (ctx.phase != DuelPhase::kNack || !ctx.alice_running) return plan;
  if (budget().exhausted()) return plan;
  // Simulate an uninformed Bob: nack with the protocol's own probability.
  // The expected spend is protocol_prob * num_slots; the driver charges the
  // adversary per spoofed transmission that actually occurs and draws it
  // from this budget, so here we only gate on non-exhaustion.
  plan.spoof_nack_prob = ctx.protocol_prob;
  return plan;
}

}  // namespace rcb
