#include "rcb/adversary/mc_strategies.hpp"

#include <utility>

#include "rcb/common/contracts.hpp"

namespace rcb {

std::uint64_t McNoJam::jam_mask(SlotIndex, std::uint32_t,
                                std::span<const McSlotActivity>) {
  return 0;
}

McUniformSplitJammer::McUniformSplitJammer(Budget budget, double rate, Rng rng)
    : budget_(budget), rate_(rate), rng_(rng) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

std::uint64_t McUniformSplitJammer::jam_mask(
    SlotIndex, std::uint32_t num_channels,
    std::span<const McSlotActivity>) {
  // One Bernoulli per channel per slot, budget exhaustion or not, so the
  // decision stream does not depend on when the budget ran dry.
  std::uint64_t mask = 0;
  for (std::uint32_t c = 0; c < num_channels; ++c) {
    if (rng_.bernoulli(rate_) && budget_.take(1) == 1) {
      mask |= std::uint64_t{1} << c;
    }
  }
  return mask;
}

McFocusJammer::McFocusJammer(Budget budget, double rate, std::uint32_t target,
                             Rng rng)
    : budget_(budget), rate_(rate), target_(target), rng_(rng) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

std::uint64_t McFocusJammer::jam_mask(SlotIndex, std::uint32_t num_channels,
                                      std::span<const McSlotActivity>) {
  const double p = rate_ * static_cast<double>(num_channels);
  if (!rng_.bernoulli(p < 1.0 ? p : 1.0)) return 0;
  if (budget_.take(1) != 1) return 0;
  return std::uint64_t{1} << (target_ % num_channels);
}

McSweepJammer::McSweepJammer(Budget budget, SlotCount dwell)
    : budget_(budget), dwell_(dwell) {
  RCB_REQUIRE(dwell >= 1);
}

std::uint64_t McSweepJammer::jam_mask(SlotIndex slot,
                                      std::uint32_t num_channels,
                                      std::span<const McSlotActivity>) {
  if (budget_.take(1) != 1) return 0;
  const std::uint64_t ch = (slot / dwell_) % num_channels;
  return std::uint64_t{1} << ch;
}

McScheduleAdversary::McScheduleAdversary(std::vector<JamSchedule> per_channel)
    : per_channel_(std::move(per_channel)) {
  RCB_REQUIRE(per_channel_.size() <= kMaxChannels);
}

std::uint64_t McScheduleAdversary::jam_mask(
    SlotIndex slot, std::uint32_t num_channels,
    std::span<const McSlotActivity>) {
  std::uint64_t mask = 0;
  const std::uint32_t n =
      num_channels < per_channel_.size()
          ? num_channels
          : static_cast<std::uint32_t>(per_channel_.size());
  for (std::uint32_t c = 0; c < n; ++c) {
    if (per_channel_[c].is_jammed(slot)) mask |= std::uint64_t{1} << c;
  }
  return mask;
}

std::uint64_t McFromSlotAdversary::jam_mask(
    SlotIndex slot, std::uint32_t,
    std::span<const McSlotActivity> history) {
  scratch_.clear();
  scratch_.reserve(history.size());
  for (const McSlotActivity& rec : history) {
    scratch_.push_back(SlotActivity{rec.slot, rec.senders,
                                    (rec.jam_mask & 1) != 0});
  }
  return inner_.jam(slot, scratch_) ? 1 : 0;
}

}  // namespace rcb
