#include "rcb/adversary/mc_strategies.hpp"

#include <utility>

#include "rcb/common/contracts.hpp"

namespace rcb {

std::uint64_t McNoJam::jam_mask(SlotIndex, std::uint32_t,
                                std::span<const McSlotActivity>) {
  return 0;
}

bool McNoJam::jam_run_masks(SlotIndex begin, SlotIndex end, std::uint32_t,
                            std::span<const McSlotActivity>,
                            McJamRunSink& sink) {
  sink.append(end - begin, 0);
  return true;
}

McUniformSplitJammer::McUniformSplitJammer(Budget budget, double rate, Rng rng)
    : budget_(budget), rate_(rate), rng_(rng) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

std::uint64_t McUniformSplitJammer::jam_mask(
    SlotIndex, std::uint32_t num_channels,
    std::span<const McSlotActivity>) {
  // One Bernoulli per channel per slot, budget exhaustion or not, so the
  // decision stream does not depend on when the budget ran dry.
  std::uint64_t mask = 0;
  for (std::uint32_t c = 0; c < num_channels; ++c) {
    if (rng_.bernoulli(rate_) && budget_.take(1) == 1) {
      mask |= std::uint64_t{1} << c;
    }
  }
  return mask;
}

bool McUniformSplitJammer::jam_run_masks(SlotIndex begin, SlotIndex end,
                                         std::uint32_t num_channels,
                                         std::span<const McSlotActivity>,
                                         McJamRunSink& sink) {
  const SlotCount len = end - begin;
  // rate <= 0: bernoulli(p <= 0) consumes no draws and takes no budget —
  // the whole run is one clear segment with no state change.
  if (rate_ <= 0.0) {
    sink.append(len, 0);
    return true;
  }
  // General case: replay the per-slot draws verbatim.  Rng and Budget are
  // small value types, so snapshotting them lets an RLE overflow decline
  // without a trace.
  const Rng rng_snapshot = rng_;
  const Budget budget_snapshot = budget_;
  for (SlotCount k = 0; k < len; ++k) {
    std::uint64_t mask = 0;
    for (std::uint32_t c = 0; c < num_channels; ++c) {
      if (rng_.bernoulli(rate_) && budget_.take(1) == 1) {
        mask |= std::uint64_t{1} << c;
      }
    }
    if (!sink.append(1, mask)) {
      rng_ = rng_snapshot;
      budget_ = budget_snapshot;
      return false;
    }
  }
  return true;
}

McFocusJammer::McFocusJammer(Budget budget, double rate, std::uint32_t target,
                             Rng rng)
    : budget_(budget), rate_(rate), target_(target), rng_(rng) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

std::uint64_t McFocusJammer::jam_mask(SlotIndex, std::uint32_t num_channels,
                                      std::span<const McSlotActivity>) {
  const double p = rate_ * static_cast<double>(num_channels);
  if (!rng_.bernoulli(p < 1.0 ? p : 1.0)) return 0;
  if (budget_.take(1) != 1) return 0;
  return std::uint64_t{1} << (target_ % num_channels);
}

bool McFocusJammer::jam_run_masks(SlotIndex begin, SlotIndex end,
                                  std::uint32_t num_channels,
                                  std::span<const McSlotActivity>,
                                  McJamRunSink& sink) {
  const SlotCount len = end - begin;
  const double p_raw = rate_ * static_cast<double>(num_channels);
  const double p = p_raw < 1.0 ? p_raw : 1.0;
  // bernoulli(p <= 0) consumes no draws and the take() is short-circuited
  // away: the run is one clear segment, state untouched.
  if (p <= 0.0) {
    sink.append(len, 0);
    return true;
  }
  const std::uint64_t bit = std::uint64_t{1} << (target_ % num_channels);
  if (p >= 1.0) {
    // bernoulli(p >= 1) consumes no draws either: the run jams the target
    // until the budget dries, then stays clear — at most two segments, and
    // take(len) is the same spend as len take(1) calls.
    const SlotCount jammed = budget_.take(len);
    sink.append(jammed, bit);
    sink.append(len - jammed, 0);
    return true;
  }
  const Rng rng_snapshot = rng_;
  const Budget budget_snapshot = budget_;
  for (SlotCount k = 0; k < len; ++k) {
    std::uint64_t mask = 0;
    if (rng_.bernoulli(p) && budget_.take(1) == 1) mask = bit;
    if (!sink.append(1, mask)) {
      rng_ = rng_snapshot;
      budget_ = budget_snapshot;
      return false;
    }
  }
  return true;
}

McSweepJammer::McSweepJammer(Budget budget, SlotCount dwell)
    : budget_(budget), dwell_(dwell) {
  RCB_REQUIRE(dwell >= 1);
}

std::uint64_t McSweepJammer::jam_mask(SlotIndex slot,
                                      std::uint32_t num_channels,
                                      std::span<const McSlotActivity>) {
  if (budget_.take(1) != 1) return 0;
  const std::uint64_t ch = (slot / dwell_) % num_channels;
  return std::uint64_t{1} << ch;
}

bool McSweepJammer::jam_run_masks(SlotIndex begin, SlotIndex end,
                                  std::uint32_t num_channels,
                                  std::span<const McSlotActivity>,
                                  McJamRunSink& sink) {
  // Deterministic: walk the run dwell segment by dwell segment, granting
  // each its budget slice up front — take(k) is the same spend as k take(1)
  // calls, and once the budget dries the rest of the run is clear.
  const Budget budget_snapshot = budget_;
  SlotIndex s = begin;
  while (s < end) {
    const SlotIndex dwell_end = (s / dwell_ + 1) * dwell_;
    const SlotIndex seg_end = dwell_end < end ? dwell_end : end;
    const SlotCount want = seg_end - s;
    const SlotCount got = budget_.take(want);
    const std::uint64_t bit = std::uint64_t{1}
                              << ((s / dwell_) % num_channels);
    if (!sink.append(got, bit) || !sink.append(want - got, 0)) {
      budget_ = budget_snapshot;
      return false;
    }
    if (got < want && seg_end < end) {
      // Budget exhausted mid-run: every remaining slot is clear (and merges
      // into the zero segment just appended).
      sink.append(end - seg_end, 0);
      return true;
    }
    s = seg_end;
  }
  return true;
}

McScheduleAdversary::McScheduleAdversary(std::vector<JamSchedule> per_channel)
    : per_channel_(std::move(per_channel)) {
  RCB_REQUIRE(per_channel_.size() <= kMaxChannels);
}

std::uint64_t McScheduleAdversary::jam_mask(
    SlotIndex slot, std::uint32_t num_channels,
    std::span<const McSlotActivity>) {
  std::uint64_t mask = 0;
  const std::uint32_t n =
      num_channels < per_channel_.size()
          ? num_channels
          : static_cast<std::uint32_t>(per_channel_.size());
  for (std::uint32_t c = 0; c < n; ++c) {
    if (per_channel_[c].is_jammed(slot)) mask |= std::uint64_t{1} << c;
  }
  return mask;
}

bool McScheduleAdversary::jam_run_masks(SlotIndex begin, SlotIndex end,
                                        std::uint32_t num_channels,
                                        std::span<const McSlotActivity>,
                                        McJamRunSink& sink) {
  // Stateless: recompute each slot's mask and lean on the sink's RLE merge
  // (schedules are interval-shaped, so runs compress well).  An overflow
  // simply declines — there is nothing to roll back.
  const std::uint32_t n =
      num_channels < per_channel_.size()
          ? num_channels
          : static_cast<std::uint32_t>(per_channel_.size());
  for (SlotIndex s = begin; s < end; ++s) {
    std::uint64_t mask = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (per_channel_[c].is_jammed(s)) mask |= std::uint64_t{1} << c;
    }
    if (!sink.append(1, mask)) return false;
  }
  return true;
}

std::uint64_t McFromSlotAdversary::jam_mask(
    SlotIndex slot, std::uint32_t,
    std::span<const McSlotActivity> history) {
  scratch_.clear();
  scratch_.reserve(history.size());
  for (const McSlotActivity& rec : history) {
    scratch_.push_back(SlotActivity{rec.slot, rec.senders,
                                    (rec.jam_mask & 1) != 0});
  }
  return inner_.jam(slot, scratch_) ? 1 : 0;
}

bool McFromSlotAdversary::jam_run_masks(
    SlotIndex begin, SlotIndex end, std::uint32_t,
    std::span<const McSlotActivity> history, McJamRunSink& sink) {
  // Translate the history exactly as jam_mask() does, then let the inner
  // adversary answer (or decline) the run; scratch_ is rebuilt on every
  // call, so filling it before a decline mutates nothing observable.
  scratch_.clear();
  scratch_.reserve(history.size());
  for (const McSlotActivity& rec : history) {
    scratch_.push_back(SlotActivity{rec.slot, rec.senders,
                                    (rec.jam_mask & 1) != 0});
  }
  JamRunSink inner_sink;
  if (!inner_.jam_run(begin, end, scratch_, inner_sink)) return false;
  // Both sinks share kMaxSegments and bool -> mask preserves segment
  // boundaries, so the converted appends cannot overflow.
  for (const JamRunSink::Segment& seg : inner_sink.segments()) {
    sink.append(seg.length, seg.decision ? std::uint64_t{1} : 0);
  }
  return true;
}

}  // namespace rcb
