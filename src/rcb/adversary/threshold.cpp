#include "rcb/adversary/threshold.hpp"

#include "rcb/common/contracts.hpp"

namespace rcb {

ThresholdAdversary::ThresholdAdversary(Cost announced_budget)
    : announced_(announced_budget), budget_(announced_budget) {
  RCB_REQUIRE(announced_budget > 0);
}

bool ThresholdAdversary::jam(double alice_prob, double bob_prob) {
  if (budget_.exhausted()) return false;
  const double threshold = 1.0 / static_cast<double>(announced_);
  if (alice_prob * bob_prob <= threshold) return false;
  budget_.take(1);
  return true;
}

}  // namespace rcb
