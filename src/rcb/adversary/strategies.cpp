#include "rcb/adversary/strategies.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"

namespace rcb {

JamSchedule NoJamAdversary::plan(const RepetitionContext&, Rng&) {
  return JamSchedule::none();
}

SuffixBlockerAdversary::SuffixBlockerAdversary(Budget budget, double q)
    : RepetitionAdversary(budget), q_(q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
}

JamSchedule SuffixBlockerAdversary::plan(const RepetitionContext& ctx, Rng&) {
  const auto want = static_cast<Cost>(
      std::ceil(q_ * static_cast<double>(ctx.num_slots)));
  const Cost got = budget().take(want);
  if (got == 0) return JamSchedule::none();
  return JamSchedule::suffix(ctx.num_slots, ctx.num_slots - got);
}

EpochFractionBlockerAdversary::EpochFractionBlockerAdversary(
    Budget budget, double q, double repetition_fraction)
    : RepetitionAdversary(budget), q_(q), fraction_(repetition_fraction) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
  RCB_REQUIRE(repetition_fraction >= 0.0 && repetition_fraction <= 1.0);
}

JamSchedule EpochFractionBlockerAdversary::plan(const RepetitionContext& ctx,
                                                Rng& rng) {
  if (!rng.bernoulli(fraction_)) return JamSchedule::none();
  const auto want = static_cast<Cost>(
      std::ceil(q_ * static_cast<double>(ctx.num_slots)));
  const Cost got = budget().take(want);
  if (got == 0) return JamSchedule::none();
  return JamSchedule::suffix(ctx.num_slots, ctx.num_slots - got);
}

RandomJammerAdversary::RandomJammerAdversary(Budget budget, double rate)
    : RepetitionAdversary(budget), rate_(rate) {
  RCB_REQUIRE(rate >= 0.0 && rate <= 1.0);
}

JamSchedule RandomJammerAdversary::plan(const RepetitionContext& ctx,
                                        Rng& rng) {
  std::vector<SlotIndex> jammed;
  sample_bernoulli_slots(ctx.num_slots, rate_, rng, jammed);
  const Cost got = budget().take(jammed.size());
  jammed.resize(got);  // stop jamming mid-repetition when the budget dies
  return JamSchedule::slots(ctx.num_slots, std::move(jammed));
}

BurstJammerAdversary::BurstJammerAdversary(Budget budget, SlotCount burst_len,
                                           SlotCount period)
    : RepetitionAdversary(budget), burst_len_(burst_len), period_(period) {
  RCB_REQUIRE(period > 0);
  RCB_REQUIRE(burst_len <= period);
}

JamSchedule BurstJammerAdversary::plan(const RepetitionContext& ctx, Rng&) {
  std::vector<SlotIndex> jammed;
  for (SlotIndex start = 0; start < ctx.num_slots; start += period_) {
    const SlotIndex end = std::min<SlotIndex>(start + burst_len_, ctx.num_slots);
    for (SlotIndex s = start; s < end; ++s) jammed.push_back(s);
  }
  const Cost got = budget().take(jammed.size());
  jammed.resize(got);
  return JamSchedule::slots(ctx.num_slots, std::move(jammed));
}

}  // namespace rcb
