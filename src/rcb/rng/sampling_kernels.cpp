// Geometric-skip block kernels: scalar reference and AVX2.
//
// Both kernels compute, for four raw 64-bit RNG outputs,
//
//     skip_i = floor(log(1 - (raw_i >> 11) * 2^-53) * inv_log1mp)
//
// and must agree bit-for-bit.  The AVX2 path evaluates a vector log via
// exponent/mantissa decomposition and an atanh series, which is *not*
// correctly rounded — so it brackets each result with a guard interval wide
// enough to cover both its own error and std::log's, and recomputes any lane
// whose floor is ambiguous with the scalar reference.  Agreement is therefore
// by construction, not by hoping two libm-quality logs round the same way;
// the guard fires on a negligible fraction of draws (it is proportional to
// the interval width, ~2^-40 of a slot for typical probabilities).
#include <cmath>
#include <cstdint>

#include "rcb/common/simd.hpp"
#include "rcb/rng/sampling.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RCB_SAMPLING_AVX2 1
#include <immintrin.h>
#endif

namespace rcb::detail {

void skip_block_scalar(const std::uint64_t raw[4], double inv_log1mp,
                       double out[4]) {
  for (int i = 0; i < 4; ++i) {
    // Identical to Rng::uniform_double_open() on the same raw draw.
    const double u =
        1.0 - static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
    out[i] = std::floor(std::log(u) * inv_log1mp);
  }
}

#ifdef RCB_SAMPLING_AVX2

__attribute__((target("avx2,fma"))) void skip_block_avx2(
    const std::uint64_t raw[4], double inv_log1mp, double out[4]) {
  const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw));
  // u = 1 - (raw>>11)*2^-53 == (2^53 - (raw>>11)) * 2^-53 exactly: the
  // integer v = 2^53 - top53 is in [1, 2^53], exactly representable, so the
  // subtraction the scalar path performs in floating point is replayed here
  // as exact integer arithmetic.
  const __m256i top53 = _mm256_srli_epi64(x, 11);
  const __m256i v =
      _mm256_sub_epi64(_mm256_set1_epi64x(std::int64_t{1} << 53), top53);
  // Exact int64 -> double for v <= 2^53 (split into 32-bit halves carried by
  // the 2^84 / 2^52 exponent windows).
  __m256i vh = _mm256_srli_epi64(v, 32);
  vh = _mm256_or_si256(vh, _mm256_castpd_si256(_mm256_set1_pd(0x1.0p84)));
  const __m256i vl = _mm256_blend_epi16(
      v, _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52)), 0xcc);
  const __m256d vd = _mm256_add_pd(
      _mm256_sub_pd(_mm256_castsi256_pd(vh),
                    _mm256_set1_pd(0x1.0p84 + 0x1.0p52)),
      _mm256_castsi256_pd(vl));
  const __m256d u = _mm256_mul_pd(vd, _mm256_set1_pd(0x1.0p-53));

  // Decompose u = 2^e * m with m in [sqrt(2)/2, sqrt(2)).  u is in
  // [2^-53, 1] and always normal, so the exponent field is authoritative.
  const __m256i bits = _mm256_castpd_si256(u);
  __m256i e_i = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                 _mm256_set1_epi64x(1023));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
      _mm256_set1_epi64x(0x3FF0000000000000ll)));  // mantissa in [1, 2)
  const __m256d ge_sqrt2 =
      _mm256_cmp_pd(m, _mm256_set1_pd(1.4142135623730951), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), ge_sqrt2);
  e_i = _mm256_add_epi64(
      e_i, _mm256_and_si256(_mm256_castpd_si256(ge_sqrt2),
                            _mm256_set1_epi64x(1)));
  // e is in [-53, 0]: bias into the 2^52 window for an exact int -> double.
  const __m256d e_d = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(
          _mm256_add_epi64(e_i, _mm256_set1_epi64x(1075)),
          _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52)))),
      _mm256_set1_pd(0x1.0p52 + 1075.0));

  // log(m) = 2 atanh(r), r = (m-1)/(m+1) in [-0.1716, 0.1716]; the odd
  // series truncated at r^21 has error < 2^-55 |log m|.
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d r =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d s = _mm256_mul_pd(r, r);
  __m256d poly = _mm256_set1_pd(1.0 / 21.0);
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 19.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 17.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 15.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 13.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 11.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 9.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 7.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 5.0));
  poly = _mm256_fmadd_pd(poly, s, _mm256_set1_pd(1.0 / 3.0));
  poly = _mm256_fmadd_pd(poly, s, one);
  const __m256d logm = _mm256_mul_pd(_mm256_add_pd(r, r), poly);

  // log(u) = e*ln2 + log(m), with ln2 split so the e*ln2_hi product is exact
  // for |e| <= 53 (ln2_hi has its low 22 significand bits zero).
  const __m256d t = _mm256_fmadd_pd(
      e_d, _mm256_set1_pd(6.93147180369123816490e-01),
      _mm256_fmadd_pd(e_d, _mm256_set1_pd(1.90821492927058770002e-10), logm));
  const __m256d inv = _mm256_set1_pd(inv_log1mp);
  const __m256d y = _mm256_mul_pd(t, inv);

  // Guard interval: the series path is good to ~|t| * 2^-48 and std::log to
  // ~|t| * 2^-53, so a band of |t| * 2^-43 (plus slack for the final
  // multiply) brackets the scalar result with a wide margin.  If both ends
  // floor the same, that floor is the scalar floor; otherwise redo the lane
  // with std::log itself.  NaN/inf lanes (degenerate inv_log1mp) never
  // compare equal and always take the scalar path.
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m256d delta = _mm256_fmadd_pd(
      _mm256_mul_pd(
          _mm256_add_pd(_mm256_and_pd(t, abs_mask), _mm256_set1_pd(0x1.0p-40)),
          _mm256_and_pd(inv, abs_mask)),
      _mm256_set1_pd(0x1.0p-43),
      _mm256_fmadd_pd(_mm256_and_pd(y, abs_mask), _mm256_set1_pd(0x1.0p-47),
                      _mm256_set1_pd(0x1.0p-47)));
  const __m256d lo = _mm256_floor_pd(_mm256_sub_pd(y, delta));
  const __m256d hi = _mm256_floor_pd(_mm256_add_pd(y, delta));
  _mm256_storeu_pd(out, lo);
  const int unambiguous =
      _mm256_movemask_pd(_mm256_cmp_pd(lo, hi, _CMP_EQ_OQ));
  if (unambiguous != 0xF) {
    for (int lane = 0; lane < 4; ++lane) {
      if (unambiguous & (1 << lane)) continue;
      const double ul =
          1.0 - static_cast<double>(raw[lane] >> 11) * 0x1.0p-53;
      out[lane] = std::floor(std::log(ul) * inv_log1mp);
    }
  }
}

#endif  // RCB_SAMPLING_AVX2

SkipBlockFn skip_block_fn() {
#ifdef RCB_SAMPLING_AVX2
  if (simd::active_mode() == simd::Mode::kAvx2) return &skip_block_avx2;
#endif
  return &skip_block_scalar;
}

}  // namespace rcb::detail
