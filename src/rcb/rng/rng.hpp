// Deterministic pseudo-random generation for reproducible experiments.
//
// All stochastic behaviour in the library flows through Rng.  The generator
// is xoshiro256** seeded via splitmix64, following the reference
// constructions of Blackman & Vigna.  Streams are split deterministically so
// that parallel Monte-Carlo trials are reproducible independent of thread
// scheduling: stream k of master seed s is seeded from
// splitmix64(s + golden-gamma * (k+1)).
//
// The standard <random> engines are deliberately not used: their
// distributions are implementation-defined, which would make test
// expectations and recorded experiment output non-portable.
#pragma once

#include <array>
#include <cstdint>

namespace rcb {

/// splitmix64 step: returns the next output and advances the state.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** PRNG with utility draws used by the simulator.
class Rng {
 public:
  /// Seeds the generator from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ull);

  /// Deterministically derives an independent stream (e.g. per Monte-Carlo
  /// trial or per node).  Streams with distinct ids never share state.
  static Rng stream(std::uint64_t master_seed, std::uint64_t stream_id);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire rejection.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double();

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniform_double_open();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard exponential variate (rate 1).
  double exponential();

  /// Steps the state backwards by `draws` calls to next_u64().  The
  /// xoshiro256** transition is linear over GF(2) and therefore invertible;
  /// this lets block-speculative consumers (the SIMD geometric-skip sampler)
  /// draw a fixed-width batch and return the unused tail to the stream, so
  /// the observable draw sequence stays identical to one-at-a-time use.
  void rewind(std::uint64_t draws = 1);

  /// Snapshot of the internal state, for tests.
  std::array<std::uint64_t, 4> state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace rcb
