// Sparse sampling of per-slot Bernoulli processes.
//
// Every protocol in the paper has each node act independently per slot with
// a small probability p (send with S_u/2^i, listen with S_u d i^3/2^i, ...).
// Simulating 2^i Bernoulli draws per node per repetition would make run time
// O(slots * nodes).  Instead we sample only the slots where the process
// *fires*, using geometric skips: if U ~ Uniform(0,1], the gap to the next
// success of a Bernoulli(p) sequence is 1 + floor(log(U) / log(1-p)).  This
// is an exact (not approximate) simulation of the per-slot process, with
// cost proportional to the node's actual energy expenditure — the same
// quantity the paper's cost model charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

/// Streaming sampler over the slots {0, 1, ..., n-1} where an independent
/// Bernoulli(p) per slot fires.  Slots are produced in increasing order.
class BernoulliSlotSampler {
 public:
  /// Sentinel returned by next() when the phase is exhausted.
  static constexpr SlotIndex kEnd = UINT64_MAX;

  BernoulliSlotSampler(SlotCount num_slots, double p, Rng& rng);

  /// Next firing slot, or kEnd if none remain.
  SlotIndex next();

 private:
  SlotCount num_slots_;
  double p_;
  double inv_log1mp_;  // 1 / log(1 - p); 0 when p is degenerate
  SlotIndex cursor_ = 0;
  Rng* rng_;
};

/// Collects all firing slots of a Bernoulli(p)-per-slot process over
/// [0, num_slots) into `out` (cleared first, ascending order).
void sample_bernoulli_slots(SlotCount num_slots, double p, Rng& rng,
                            std::vector<SlotIndex>& out);

/// Exact Binomial(n, p) draw via geometric skipping: O(np + 1) expected time.
std::uint64_t binomial(std::uint64_t n, double p, Rng& rng);

/// Geometric(p) on {1, 2, ...}: number of Bernoulli(p) trials up to and
/// including the first success.  p must be in (0, 1].
std::uint64_t geometric(double p, Rng& rng);

}  // namespace rcb
