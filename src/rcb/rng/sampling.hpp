// Sparse sampling of per-slot Bernoulli processes.
//
// Every protocol in the paper has each node act independently per slot with
// a small probability p (send with S_u/2^i, listen with S_u d i^3/2^i, ...).
// Simulating 2^i Bernoulli draws per node per repetition would make run time
// O(slots * nodes).  Instead we sample only the slots where the process
// *fires*, using geometric skips: if U ~ Uniform(0,1], the gap to the next
// success of a Bernoulli(p) sequence is 1 + floor(log(U) / log(1-p)).  This
// is an exact (not approximate) simulation of the per-slot process, with
// cost proportional to the node's actual energy expenditure — the same
// quantity the paper's cost model charges for.
// The bulk paths (sample_bernoulli_slots and the engines' presample loops)
// draw speculative blocks of four uniforms, compute the four geometric skips
// with a dispatched kernel (scalar reference or AVX2 — bit-identical, see
// common/simd.hpp), and rewind the RNG over unused lanes when the phase
// terminates mid-block.  The observable draw sequence and every emitted slot
// are identical to the streaming one-draw-at-a-time sampler on any host.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

namespace detail {

/// Computes the four geometric skips floor(log(1 - (raw>>11)*2^-53) *
/// inv_log1mp) for one speculative block.  Implementations must be
/// bit-identical to the scalar reference for every input.
using SkipBlockFn = void (*)(const std::uint64_t raw[4], double inv_log1mp,
                             double out[4]);

/// Scalar reference kernel (std::log per lane).
void skip_block_scalar(const std::uint64_t raw[4], double inv_log1mp,
                       double out[4]);

/// Kernel for the current simd::active_mode().
SkipBlockFn skip_block_fn();

}  // namespace detail

/// Streaming sampler over the slots {0, 1, ..., n-1} where an independent
/// Bernoulli(p) per slot fires.  Slots are produced in increasing order.
class BernoulliSlotSampler {
 public:
  /// Sentinel returned by next() when the phase is exhausted.
  static constexpr SlotIndex kEnd = UINT64_MAX;

  BernoulliSlotSampler(SlotCount num_slots, double p, Rng& rng);

  /// Next firing slot, or kEnd if none remain.
  SlotIndex next();

 private:
  SlotCount num_slots_;
  double p_;
  double inv_log1mp_;  // 1 / log(1 - p); 0 when p is degenerate
  SlotIndex cursor_ = 0;
  Rng* rng_;
};

/// Bulk form of BernoulliSlotSampler: invokes `emit(slot)` for every firing
/// slot, ascending.  Draws the RNG in speculative blocks of four and rewinds
/// the unused lanes, so the stream position after return — and every emitted
/// slot — is bit-identical to draining a BernoulliSlotSampler.  `skip_block`
/// is a kernel from detail::skip_block_fn(); pass it in so per-phase callers
/// resolve the dispatch once.
template <typename Emit>
void for_each_bernoulli_slot(SlotCount num_slots, double p, Rng& rng,
                             detail::SkipBlockFn skip_block, Emit&& emit) {
  RCB_REQUIRE(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || num_slots == 0) return;
  if (p >= 1.0) {
    for (SlotIndex s = 0; s < num_slots; ++s) emit(s);
    return;
  }
  const double inv_log1mp = 1.0 / std::log1p(-p);
  std::uint64_t raw[4];
  double skips[4];
  SlotIndex cursor = 0;
  for (;;) {
    raw[0] = rng.next_u64();
    raw[1] = rng.next_u64();
    raw[2] = rng.next_u64();
    raw[3] = rng.next_u64();
    skip_block(raw, inv_log1mp, skips);
    for (int lane = 0; lane < 4; ++lane) {
      const double skip = skips[lane];
      // Same saturation logic as BernoulliSlotSampler::next(), lane by lane.
      if (skip >= static_cast<double>(num_slots - cursor)) {
        rng.rewind(static_cast<std::uint64_t>(3 - lane));
        return;
      }
      cursor += static_cast<SlotIndex>(skip);
      emit(cursor);
      ++cursor;
      if (cursor >= num_slots) {
        // Fired on the last slot: the streaming sampler returns kEnd on the
        // following call without drawing, so the lanes after this one are
        // surplus speculation.
        rng.rewind(static_cast<std::uint64_t>(3 - lane));
        return;
      }
    }
  }
}

/// Collects all firing slots of a Bernoulli(p)-per-slot process over
/// [0, num_slots) into `out` (cleared first, ascending order).
void sample_bernoulli_slots(SlotCount num_slots, double p, Rng& rng,
                            std::vector<SlotIndex>& out);

/// Exact Binomial(n, p) draw via geometric skipping: O(np + 1) expected time.
std::uint64_t binomial(std::uint64_t n, double p, Rng& rng);

/// Geometric(p) on {1, 2, ...}: number of Bernoulli(p) trials up to and
/// including the first success.  p must be in (0, 1].
std::uint64_t geometric(double p, Rng& rng);

}  // namespace rcb
