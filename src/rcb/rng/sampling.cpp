#include "rcb/rng/sampling.hpp"

#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {

BernoulliSlotSampler::BernoulliSlotSampler(SlotCount num_slots, double p,
                                           Rng& rng)
    : num_slots_(num_slots), p_(p), rng_(&rng) {
  RCB_REQUIRE(p >= 0.0 && p <= 1.0);
  inv_log1mp_ = (p > 0.0 && p < 1.0) ? 1.0 / std::log1p(-p) : 0.0;
}

SlotIndex BernoulliSlotSampler::next() {
  if (p_ <= 0.0 || cursor_ >= num_slots_) return kEnd;
  if (p_ >= 1.0) return cursor_++;
  // Gap to the next success is 1 + floor(log(U)/log(1-p)), U in (0,1].
  const double u = rng_->uniform_double_open();
  const double skip = std::floor(std::log(u) * inv_log1mp_);
  // skip can be enormous (or inf) when u is tiny and p is small; saturate.
  if (skip >= static_cast<double>(num_slots_ - cursor_)) {
    cursor_ = num_slots_;
    return kEnd;
  }
  cursor_ += static_cast<SlotIndex>(skip);
  if (cursor_ >= num_slots_) return kEnd;
  return cursor_++;
}

void sample_bernoulli_slots(SlotCount num_slots, double p, Rng& rng,
                            std::vector<SlotIndex>& out) {
  out.clear();
  for_each_bernoulli_slot(num_slots, p, rng, detail::skip_block_fn(),
                          [&](SlotIndex s) { out.push_back(s); });
}

std::uint64_t binomial(std::uint64_t n, double p, Rng& rng) {
  RCB_REQUIRE(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  std::uint64_t count = 0;
  BernoulliSlotSampler sampler(n, p, rng);
  while (sampler.next() != BernoulliSlotSampler::kEnd) ++count;
  return count;
}

std::uint64_t geometric(double p, Rng& rng) {
  RCB_REQUIRE(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  const double u = rng.uniform_double_open();
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= 1.8e19) return UINT64_MAX;
  return 1 + static_cast<std::uint64_t>(g);
}

}  // namespace rcb
