#include "rcb/rng/rng.hpp"

#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {
namespace {

constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ull;

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t rotr(std::uint64_t x, int k) {
  return (x >> k) | (x << (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += kGoldenGamma;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // xoshiro must not start in the all-zero state; splitmix64 cannot emit
  // four consecutive zeros, so this is a belt-and-braces check only.
  RCB_ASSERT(s_[0] | s_[1] | s_[2] | s_[3]);
}

Rng Rng::stream(std::uint64_t master_seed, std::uint64_t stream_id) {
  return Rng(master_seed + kGoldenGamma * (stream_id + 1));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  RCB_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double_open() {
  return 1.0 - uniform_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential() {
  return -std::log(uniform_double_open());
}

void Rng::rewind(std::uint64_t draws) {
  // The next_u64 state transition is linear over GF(2):
  //   t  = a1 << 17
  //   b2 = a2 ^ a0 ^ t,  b3 = rotl(a3 ^ a1, 45),
  //   b1 = a1 ^ a2 ^ a0, b0 = a0 ^ a3 ^ a1.
  // Solving for (a0..a3): note b1 ^ b2 = a1 ^ (a1 << 17); the shift-by-17
  // map L is nilpotent (L^4 = 0), so (I ^ L)^-1 = I ^ L ^ L^2 ^ L^3.
  while (draws-- > 0) {
    const std::uint64_t b0 = s_[0], b1 = s_[1], b2 = s_[2], b3 = s_[3];
    const std::uint64_t x3 = rotr(b3, 45);  // a3 ^ a1
    const std::uint64_t c = b1 ^ b2;        // a1 ^ (a1 << 17)
    const std::uint64_t a1 = c ^ (c << 17) ^ (c << 34) ^ (c << 51);
    const std::uint64_t x2 = b1 ^ a1;  // a2 ^ a0
    const std::uint64_t a0 = b0 ^ x3;
    s_[0] = a0;
    s_[1] = a1;
    s_[2] = x2 ^ a0;
    s_[3] = x3 ^ a1;
  }
}

}  // namespace rcb
