#include "rcb/sim/trace.hpp"

namespace rcb {

void Trace::record(SlotIndex slot, std::uint32_t senders,
                   std::uint32_t listeners, bool jammed) {
  if (events_.size() >= capacity_) {
    truncated_ = true;
    return;
  }
  events_.push_back(TraceEvent{phase_, slot, senders, listeners, jammed});
}

void Trace::clear() {
  events_.clear();
  truncated_ = false;
  phase_ = 0;
}

}  // namespace rcb
