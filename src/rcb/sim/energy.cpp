#include "rcb/sim/energy.hpp"

#include <algorithm>

namespace rcb {

Cost EnergyLedger::max_node_cost() const {
  Cost best = 0;
  for (const auto& n : nodes_) best = std::max(best, n.total());
  return best;
}

Cost EnergyLedger::total_node_cost() const {
  Cost sum = 0;
  for (const auto& n : nodes_) sum += n.total();
  return sum;
}

double EnergyLedger::mean_node_cost() const {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(total_node_cost()) /
         static_cast<double>(nodes_.size());
}

}  // namespace rcb
