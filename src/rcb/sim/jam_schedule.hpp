// Jam schedules: which slots of a phase/repetition the adversary disrupts.
//
// Lemma 1 of the paper shows that, within one phase, an adaptive adversary
// is WLOG one that leaves a prefix unjammed and jams a contiguous suffix.
// The suffix form is therefore first-class here; explicit slot lists and
// full/none schedules cover the other strategies (random, burst, ...).
#pragma once

#include <vector>

#include "rcb/common/types.hpp"

namespace rcb {

/// An immutable description of the jammed slots within one phase of
/// `num_slots` slots.
class JamSchedule {
 public:
  /// No jamming at all.
  static JamSchedule none();

  /// Every slot jammed.
  static JamSchedule all(SlotCount num_slots);

  /// Jams slots [start, num_slots) — the canonical adaptive form (Lemma 1).
  static JamSchedule suffix(SlotCount num_slots, SlotIndex start);

  /// Jams the last ceil(q * num_slots) slots; q in [0, 1].  A phase jammed
  /// this way is exactly "q-blocked" in the sense of Definition 1.
  static JamSchedule blocking_fraction(SlotCount num_slots, double q);

  /// Jams an explicit set of slots. `slots` must be sorted ascending and
  /// duplicate-free; all entries must be < num_slots.
  static JamSchedule slots(SlotCount num_slots, std::vector<SlotIndex> slots);

  /// True if `slot` is jammed.
  bool is_jammed(SlotIndex slot) const;

  /// Total number of jammed slots (the adversary's cost for this phase if
  /// it runs to completion).
  SlotCount jammed_count() const;

  /// Number of jammed slots among [0, end) — used to charge the adversary
  /// only for slots that actually elapsed before every party halted.
  SlotCount jammed_before(SlotIndex end) const;

  SlotCount num_slots() const { return num_slots_; }

 private:
  enum class Kind { kNone, kAll, kSuffix, kSlots };

  JamSchedule(Kind kind, SlotCount num_slots) : kind_(kind), num_slots_(num_slots) {}

  Kind kind_ = Kind::kNone;
  SlotCount num_slots_ = 0;
  SlotIndex suffix_start_ = 0;
  std::vector<SlotIndex> slots_;
};

}  // namespace rcb
