// Event-driven simulation of one phase/repetition of the slotted channel.
//
// Within a phase, every node acts i.i.d. per slot: it sends its payload with
// probability `send_prob` and otherwise listens with probability
// `listen_prob` (the radio is half-duplex, so a send pre-empts a listen in
// the same slot).  The engine samples only the slots where someone acts
// (see rng/sampling.hpp), so the cost of simulating a phase is proportional
// to the total energy spent in it, not to num_slots * num_nodes.
//
// Jamming is l-uniform (paper section 1.2): nodes are partitioned and each
// partition experiences its own JamSchedule.  A listener in a jammed slot
// hears noise; collisions (>= 2 senders) and single noise-payload senders
// are also heard as noise; exactly one message/nack sender in an unjammed
// slot is received; otherwise the slot is clear.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/cca.hpp"
#include "rcb/sim/faults.hpp"
#include "rcb/sim/jam_schedule.hpp"
#include "rcb/sim/trace.hpp"

namespace rcb {

/// A node's behaviour for the duration of one phase.
struct NodeAction {
  double send_prob = 0.0;          ///< per-slot transmit probability
  Payload payload = Payload::kNoise;  ///< what the node transmits
  double listen_prob = 0.0;        ///< per-slot listen probability
};

/// What one node did and heard over the phase.
struct NodeObservation {
  Cost sends = 0;      ///< slots spent transmitting
  Cost listens = 0;    ///< slots spent listening
  std::uint64_t clear = 0;     ///< clear slots heard
  std::uint64_t messages = 0;  ///< slots in which the message m was received
  std::uint64_t nacks = 0;     ///< slots in which a nack was received
  std::uint64_t noise = 0;     ///< noisy slots heard (jam or collision)
  /// First slot at which this node received the message, or kNoSlot.
  SlotIndex first_message_slot = kNoSlot;
  /// Listens charged strictly before first_message_slot (inclusive of it);
  /// used by protocols whose receivers power down upon reception.
  Cost listens_until_first_message = 0;

  std::uint64_t heard_total() const { return clear + messages + nacks + noise; }
};

/// Result of simulating one phase.
struct RepetitionResult {
  std::vector<NodeObservation> obs;  ///< one entry per node
};

/// Simulates a 1-uniform phase: one jam schedule shared by every node.
/// `cca` models imperfect clear-channel assessment (default: perfect).
/// `faults`, when non-null and active, injects the device/environment
/// faults of sim/faults.hpp (the engine registers the phase with the plan).
RepetitionResult run_repetition(SlotCount num_slots,
                                std::span<const NodeAction> actions,
                                const JamSchedule& jam, Rng& rng,
                                Trace* trace = nullptr,
                                const CcaModel& cca = CcaModel{},
                                FaultPlan* faults = nullptr);

/// Simulates an l-uniform phase.  `partition[u]` selects the jam schedule
/// experienced by node u; `schedules` holds one schedule per partition.
RepetitionResult run_repetition_luniform(
    SlotCount num_slots, std::span<const NodeAction> actions,
    std::span<const std::uint32_t> partition,
    std::span<const JamSchedule> schedules, Rng& rng, Trace* trace = nullptr,
    const CcaModel& cca = CcaModel{}, FaultPlan* faults = nullptr);

}  // namespace rcb
