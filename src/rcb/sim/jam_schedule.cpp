#include "rcb/sim/jam_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {

JamSchedule JamSchedule::none() { return JamSchedule(Kind::kNone, 0); }

JamSchedule JamSchedule::all(SlotCount num_slots) {
  JamSchedule js(Kind::kAll, num_slots);
  return js;
}

JamSchedule JamSchedule::suffix(SlotCount num_slots, SlotIndex start) {
  RCB_REQUIRE(start <= num_slots);
  JamSchedule js(Kind::kSuffix, num_slots);
  js.suffix_start_ = start;
  return js;
}

JamSchedule JamSchedule::blocking_fraction(SlotCount num_slots, double q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
  const auto jam = static_cast<SlotCount>(
      std::ceil(q * static_cast<double>(num_slots)));
  return suffix(num_slots, num_slots - std::min(jam, num_slots));
}

JamSchedule JamSchedule::slots(SlotCount num_slots,
                               std::vector<SlotIndex> slots) {
  RCB_REQUIRE(std::is_sorted(slots.begin(), slots.end()));
  RCB_REQUIRE(std::adjacent_find(slots.begin(), slots.end()) == slots.end());
  RCB_REQUIRE(slots.empty() || slots.back() < num_slots);
  JamSchedule js(Kind::kSlots, num_slots);
  js.slots_ = std::move(slots);
  return js;
}

bool JamSchedule::is_jammed(SlotIndex slot) const {
  switch (kind_) {
    case Kind::kNone:
      return false;
    case Kind::kAll:
      return slot < num_slots_;
    case Kind::kSuffix:
      return slot >= suffix_start_ && slot < num_slots_;
    case Kind::kSlots:
      return std::binary_search(slots_.begin(), slots_.end(), slot);
  }
  return false;
}

SlotCount JamSchedule::jammed_count() const {
  switch (kind_) {
    case Kind::kNone:
      return 0;
    case Kind::kAll:
      return num_slots_;
    case Kind::kSuffix:
      return num_slots_ - suffix_start_;
    case Kind::kSlots:
      return slots_.size();
  }
  return 0;
}

SlotCount JamSchedule::jammed_before(SlotIndex end) const {
  const SlotIndex e = std::min<SlotIndex>(end, num_slots_);
  switch (kind_) {
    case Kind::kNone:
      return 0;
    case Kind::kAll:
      return e;
    case Kind::kSuffix:
      return e > suffix_start_ ? e - suffix_start_ : 0;
    case Kind::kSlots: {
      const auto it = std::lower_bound(slots_.begin(), slots_.end(), e);
      return static_cast<SlotCount>(it - slots_.begin());
    }
  }
  return 0;
}

}  // namespace rcb
