// Optional per-slot tracing of channel activity.
//
// Tracing exists for debugging and for the example programs that visualise
// executions; the engines skip all trace work when no Trace is attached.
// Only slots with activity (a sender, a listener, or jamming observed by a
// listener) are recorded, and recording stops silently at `capacity` events
// so a runaway configuration cannot exhaust memory.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/common/types.hpp"

namespace rcb {

/// One traced slot.
struct TraceEvent {
  std::uint64_t phase = 0;   ///< phase sequence number (set by set_phase)
  SlotIndex slot = 0;        ///< slot within the phase
  std::uint32_t senders = 0;
  std::uint32_t listeners = 0;
  bool jammed = false;       ///< jammed for at least one partition
};

/// Bounded event recorder.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  /// Marks the start of a new phase; subsequent events carry this number.
  void begin_phase(std::uint64_t phase) { phase_ = phase; }

  void record(SlotIndex slot, std::uint32_t senders, std::uint32_t listeners,
              bool jammed);

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }
  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t phase_ = 0;
  bool truncated_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace rcb
