#include "rcb/sim/mc_slot_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"
#include "rcb/sim/engine_kernels.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {
namespace {

// Identical to the single-channel resolve(): reception on one channel of
// one slot, given that channel's sender count, single-sender payload and
// jam bit.
Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

void record(NodeObservation& o, Reception heard, SlotIndex slot) {
  switch (heard) {
    case Reception::kClear:
      ++o.clear;
      break;
    case Reception::kMessage:
      ++o.messages;
      if (o.first_message_slot == kNoSlot) {
        o.first_message_slot = slot;
        o.listens_until_first_message = o.listens;
      }
      break;
    case Reception::kNack:
      ++o.nacks;
      break;
    case Reception::kNoise:
      ++o.noise;
      break;
  }
}

// Materializes the history of an accepted jam_run_masks: `sink` covers the
// eventless run starting at `first_slot`, with each segment's mask already
// clipped to the valid-channel set by the caller.  Same tail-only
// optimization as the single-channel append_run_history: a bounded buffer
// can only ever expose its trailing `window` records, so a run at least
// that long replaces the buffer with its own tail.
void append_run_history_mc(ArenaVector<McSlotActivity>& history,
                           SlotIndex first_slot, const McJamRunSink& sink,
                           std::uint64_t valid, SlotCount window,
                           bool bounded) {
  if (window == 0) return;
  const SlotCount len = sink.total();
  if (bounded && len >= window) {
    history.clear();
    const SlotIndex start = first_slot + len - window;
    SlotIndex cur = first_slot;
    for (const McJamRunSink::Segment& seg : sink.segments()) {
      const SlotIndex seg_end = cur + seg.length;
      if (seg_end > start) {
        const SlotIndex lo = cur > start ? cur : start;
        engine_kernels::fill_mc_history_records(
            history.append_uninitialized(seg_end - lo), lo, seg_end - lo,
            seg.decision & valid);
      }
      cur = seg_end;
    }
    return;
  }
  SlotIndex cur = first_slot;
  for (const McJamRunSink::Segment& seg : sink.segments()) {
    engine_kernels::fill_mc_history_records(
        history.append_uninitialized(seg.length), cur, seg.length,
        seg.decision & valid);
    cur += seg.length;
  }
  if (bounded && history.size() >= 2 * static_cast<std::size_t>(window)) {
    history.erase_prefix(history.size() - static_cast<std::size_t>(window));
  }
}

}  // namespace

McSlotwiseResult run_repetition_slotwise_mc(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  RCB_REQUIRE(channels.num_channels >= 1 &&
              channels.num_channels <= kMaxChannels);
  RCB_REQUIRE(channels.hops.empty() || channels.hops.size() >= actions.size());
  RCB_REQUIRE(actions.size() <= event_key::kMaxNodes);
  RCB_REQUIRE(num_slots <= event_key::kMaxSlots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }
  const std::uint64_t valid = channels.valid_mask();

  McSlotwiseResult result;
  result.rep.obs.resize(actions.size());

  // Presample: identical draw order to the single-channel event engine —
  // the channel plan only stamps channel bits into the packed keys, it
  // never touches the Rng stream.
  EngineWorkspace& ws = engine_workspace();
  const detail::SkipBlockFn skip_block = detail::skip_block_fn();
  ws.events.clear();
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  ws.events.reserve(static_cast<std::size_t>(
                        expected_rate * static_cast<double>(num_slots)) +
                    16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    engine_kernels::presample_node_events(u, actions[u], num_slots, rng, ws,
                                          faults, skip_block, &channels);
  }
  std::sort(ws.events.begin(), ws.events.end());
  result.event_count = ws.events.size();

  ws.payloads.clear();
  ws.payloads.reserve(actions.size());
  for (NodeId u = 0; u < actions.size(); ++u) {
    Payload p = actions[u].payload;
    if (faults != nullptr && faults->node_skewed(u)) p = Payload::kNoise;
    ws.payloads.push_back(static_cast<std::uint8_t>(p));
  }

  const SlotCount window = adversary.history_window();
  const bool bounded =
      window != McSlotAdversary::kUnboundedHistory && window < num_slots;
  ArenaVector<McSlotActivity>& history = ws.mc_history;
  history.clear();
  if (!bounded && window > 0) history.reserve(num_slots);

  const auto history_view = [&]() -> std::span<const McSlotActivity> {
    if (!bounded) return history.view();
    const std::size_t keep =
        std::min<std::size_t>(history.size(), static_cast<std::size_t>(window));
    return {history.data() + (history.size() - keep), keep};
  };

  const std::uint64_t* keys = ws.events.data();
  const std::size_t num_events = ws.events.size();
  McJamRunSink sink;

  std::size_t i = 0;  // cursor into the sorted keys
  SlotIndex slot = 0;
  while (slot < num_slots) {
    const SlotIndex next_event_slot =
        i < num_events ? event_key::slot(keys[i]) : num_slots;
    if (slot < next_event_slot) {
      // Maximal eventless run [slot, next_event_slot): every record is a
      // zero-sender record, so the adversary may answer it in bulk.
      sink.reset();
      if (adversary.jam_run_masks(slot, next_event_slot, channels.num_channels,
                                  history_view(), sink)) {
        RCB_REQUIRE(sink.total() == next_event_slot - slot);
        for (const McJamRunSink::Segment& seg : sink.segments()) {
          const std::uint64_t mask = seg.decision & valid;
          result.jam_charges +=
              static_cast<Cost>(std::popcount(mask)) * seg.length;
          if (mask != 0) result.jammed_slots += seg.length;
        }
        append_run_history_mc(history, slot, sink, valid, window, bounded);
      } else {
        // Declined: per-slot consultation, bit-identical to the every-slot
        // loop this fast path replaced.
        for (SlotIndex s = slot; s < next_event_slot; ++s) {
          const std::uint64_t mask =
              adversary.jam_mask(s, channels.num_channels, history_view()) &
              valid;
          result.jam_charges += std::popcount(mask);
          if (mask != 0) ++result.jammed_slots;
          if (window > 0) {
            engine_kernels::push_history_compacted(
                history, McSlotActivity{s, 0, mask, 0}, window, bounded);
          }
        }
      }
      slot = next_event_slot;
      continue;
    }

    // Event slot: consult the adversary, then settle the per-channel groups.
    const std::uint64_t mask =
        adversary.jam_mask(slot, channels.num_channels, history_view()) & valid;
    result.jam_charges += std::popcount(mask);
    if (mask != 0) ++result.jammed_slots;

    std::uint64_t sender_channels = 0;
    std::uint32_t senders_total = 0;
    // slot + 1 == kMaxSlots would overflow the 34-bit slot field of pack()
    // (the key wraps to zero), so the last representable slot's group is
    // bounded by the key array directly — every remaining key is its.
    const std::size_t slot_end =
        slot + 1 < event_key::kMaxSlots
            ? i + engine_kernels::count_keys_below(
                      keys + i, num_events - i,
                      event_key::pack(slot + 1, 0, false, 0))
            : num_events;
    // Per-channel groups: keys sort by (slot, channel, is_listen, node),
    // so each channel's senders and listeners are contiguous.
    while (i < slot_end) {
      const std::uint32_t ch = event_key::channel(keys[i]);
      // ch + 1 == kMaxChannels would overflow the 6-bit channel field of
      // pack() (the stray bit ORs into the slot bits instead of carrying),
      // so the top channel's group is bounded by the slot group directly.
      const std::size_t ch_end =
          ch + 1 < kMaxChannels
              ? i + engine_kernels::count_keys_below(
                        keys + i, slot_end - i,
                        event_key::pack(slot, ch + 1, false, 0))
              : slot_end;
      const std::size_t senders_end =
          i + engine_kernels::count_keys_below(
                  keys + i, ch_end - i, event_key::pack(slot, ch, true, 0));

      const auto sender_count = static_cast<std::uint32_t>(senders_end - i);
      Payload single_payload = Payload::kNoise;
      for (std::size_t j = i; j < senders_end; ++j) {
        const NodeId u = event_key::node(keys[j]);
        single_payload = static_cast<Payload>(ws.payloads[u]);
        ++result.rep.obs[u].sends;
      }
      if (sender_count > 0) {
        sender_channels |= std::uint64_t{1} << ch;
        senders_total += sender_count;
      }
      const bool jammed = ((mask >> ch) & 1) != 0;
      for (std::size_t j = senders_end; j < ch_end; ++j) {
        const NodeId u = event_key::node(keys[j]);
        NodeObservation& o = result.rep.obs[u];
        ++o.listens;
        Reception heard = resolve(sender_count, single_payload, jammed);
        if (!cca.perfect()) heard = cca.apply(heard, rng);
        if (faults != nullptr) {
          if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                         heard == Reception::kNack)) {
            heard = Reception::kNoise;
          }
          heard = faults->degrade(heard, slot, rng);
        }
        record(o, heard, slot);
      }
      i = ch_end;
    }

    if (window > 0) {
      engine_kernels::push_history_compacted(
          history,
          McSlotActivity{slot, sender_channels, mask, senders_total}, window,
          bounded);
    }
    ++slot;
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

McSlotwiseResult run_repetition_slotwise_mc_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  RCB_REQUIRE(channels.num_channels >= 1 &&
              channels.num_channels <= kMaxChannels);
  RCB_REQUIRE(channels.hops.empty() || channels.hops.size() >= actions.size());
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }
  const std::uint64_t valid = channels.valid_mask();

  McSlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<McSlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());
  std::array<std::uint32_t, kMaxChannels> count{};
  std::array<Payload, kMaxChannels> payload{};

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const std::uint64_t mask =
        adversary.jam_mask(slot, channels.num_channels, history) & valid;
    result.jam_charges += std::popcount(mask);
    if (mask != 0) ++result.jammed_slots;

    std::uint64_t sender_channels = 0;
    std::uint32_t senders_total = 0;
    listeners.clear();
    // Dense reference: two Bernoullis per node per slot, in node order —
    // the same draw order as the single-channel dense engine, so C=1 with
    // the equivalent adversary is draw-for-draw identical.
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (faults != nullptr && faults->node_down(u, slot)) continue;
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++result.event_count;
        const std::uint32_t ch = channels.channel_of(u, slot);
        if ((sender_channels >> ch & 1) == 0) count[ch] = 0;
        sender_channels |= std::uint64_t{1} << ch;
        ++count[ch];
        ++senders_total;
        payload[ch] = a.payload;
        if (faults != nullptr && faults->node_skewed(u)) {
          payload[ch] = Payload::kNoise;
        }
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        ++result.event_count;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      const std::uint32_t ch = channels.channel_of(u, slot);
      const std::uint32_t sender_count =
          (sender_channels >> ch & 1) != 0 ? count[ch] : 0;
      Reception heard =
          resolve(sender_count, payload[ch], ((mask >> ch) & 1) != 0);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }

    history.push_back(
        McSlotActivity{slot, sender_channels, mask, senders_total});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
