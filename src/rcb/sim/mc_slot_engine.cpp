#include "rcb/sim/mc_slot_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"
#include "rcb/sim/engine_kernels.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {
namespace {

// Identical to the single-channel resolve(): reception on one channel of
// one slot, given that channel's sender count, single-sender payload and
// jam bit.
Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

void record(NodeObservation& o, Reception heard, SlotIndex slot) {
  switch (heard) {
    case Reception::kClear:
      ++o.clear;
      break;
    case Reception::kMessage:
      ++o.messages;
      if (o.first_message_slot == kNoSlot) {
        o.first_message_slot = slot;
        o.listens_until_first_message = o.listens;
      }
      break;
    case Reception::kNack:
      ++o.nacks;
      break;
    case Reception::kNoise:
      ++o.noise;
      break;
  }
}

// Bounded-window compaction, same policy as the single-channel engine.
void push_history(ArenaVector<McSlotActivity>& history,
                  const McSlotActivity& rec, SlotCount window, bool bounded) {
  history.push_back(rec);
  if (bounded && history.size() >= 2 * static_cast<std::size_t>(window)) {
    history.erase_prefix(history.size() - static_cast<std::size_t>(window));
  }
}

}  // namespace

McSlotwiseResult run_repetition_slotwise_mc(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  RCB_REQUIRE(channels.num_channels >= 1 &&
              channels.num_channels <= kMaxChannels);
  RCB_REQUIRE(channels.hops.empty() || channels.hops.size() >= actions.size());
  RCB_REQUIRE(actions.size() <= event_key::kMaxNodes);
  RCB_REQUIRE(num_slots <= event_key::kMaxSlots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }
  const std::uint64_t valid = channels.valid_mask();

  McSlotwiseResult result;
  result.rep.obs.resize(actions.size());

  // Presample: identical draw order to the single-channel event engine —
  // the channel plan only stamps channel bits into the packed keys, it
  // never touches the Rng stream.
  EngineWorkspace& ws = engine_workspace();
  const detail::SkipBlockFn skip_block = detail::skip_block_fn();
  ws.events.clear();
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  ws.events.reserve(static_cast<std::size_t>(
                        expected_rate * static_cast<double>(num_slots)) +
                    16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    engine_kernels::presample_node_events(u, actions[u], num_slots, rng, ws,
                                          faults, skip_block, &channels);
  }
  std::sort(ws.events.begin(), ws.events.end());
  result.event_count = ws.events.size();

  ws.payloads.clear();
  ws.payloads.reserve(actions.size());
  for (NodeId u = 0; u < actions.size(); ++u) {
    Payload p = actions[u].payload;
    if (faults != nullptr && faults->node_skewed(u)) p = Payload::kNoise;
    ws.payloads.push_back(static_cast<std::uint8_t>(p));
  }

  const SlotCount window = adversary.history_window();
  const bool bounded =
      window != McSlotAdversary::kUnboundedHistory && window < num_slots;
  ArenaVector<McSlotActivity>& history = ws.mc_history;
  history.clear();
  if (!bounded && window > 0) history.reserve(num_slots);

  const auto history_view = [&]() -> std::span<const McSlotActivity> {
    if (!bounded) return history.view();
    const std::size_t keep =
        std::min<std::size_t>(history.size(), static_cast<std::size_t>(window));
    return {history.data() + (history.size() - keep), keep};
  };

  const std::uint64_t* keys = ws.events.data();
  const std::size_t num_events = ws.events.size();

  // Budget-splitting strategies decide per slot (they may be randomized or
  // stateful in the split), so there is no multi-channel analogue of the
  // jam_run() bulk path: every slot — eventful or not — is one jam_mask()
  // consultation, and the event-driven win is skipping the per-node work.
  std::size_t i = 0;  // cursor into the sorted keys
  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const std::uint64_t mask =
        adversary.jam_mask(slot, channels.num_channels, history_view()) & valid;
    result.jam_charges += std::popcount(mask);
    if (mask != 0) ++result.jammed_slots;

    std::uint64_t sender_channels = 0;
    std::uint32_t senders_total = 0;
    if (i < num_events && event_key::slot(keys[i]) == slot) {
      const std::size_t slot_end =
          i + engine_kernels::count_keys_below(
                  keys + i, num_events - i,
                  event_key::pack(slot + 1, 0, false, 0));
      // Per-channel groups: keys sort by (slot, channel, is_listen, node),
      // so each channel's senders and listeners are contiguous.
      while (i < slot_end) {
        const std::uint32_t ch = event_key::channel(keys[i]);
        // ch + 1 == kMaxChannels would overflow the 6-bit channel field of
        // pack() (the stray bit ORs into the slot bits instead of carrying),
        // so the top channel's group is bounded by the slot group directly.
        const std::size_t ch_end =
            ch + 1 < kMaxChannels
                ? i + engine_kernels::count_keys_below(
                          keys + i, slot_end - i,
                          event_key::pack(slot, ch + 1, false, 0))
                : slot_end;
        const std::size_t senders_end =
            i + engine_kernels::count_keys_below(
                    keys + i, ch_end - i, event_key::pack(slot, ch, true, 0));

        const auto sender_count = static_cast<std::uint32_t>(senders_end - i);
        Payload single_payload = Payload::kNoise;
        for (std::size_t j = i; j < senders_end; ++j) {
          const NodeId u = event_key::node(keys[j]);
          single_payload = static_cast<Payload>(ws.payloads[u]);
          ++result.rep.obs[u].sends;
        }
        if (sender_count > 0) {
          sender_channels |= std::uint64_t{1} << ch;
          senders_total += sender_count;
        }
        const bool jammed = ((mask >> ch) & 1) != 0;
        for (std::size_t j = senders_end; j < ch_end; ++j) {
          const NodeId u = event_key::node(keys[j]);
          NodeObservation& o = result.rep.obs[u];
          ++o.listens;
          Reception heard = resolve(sender_count, single_payload, jammed);
          if (!cca.perfect()) heard = cca.apply(heard, rng);
          if (faults != nullptr) {
            if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                           heard == Reception::kNack)) {
              heard = Reception::kNoise;
            }
            heard = faults->degrade(heard, slot, rng);
          }
          record(o, heard, slot);
        }
        i = ch_end;
      }
    }

    if (window > 0) {
      push_history(history,
                   McSlotActivity{slot, sender_channels, mask, senders_total},
                   window, bounded);
    }
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

McSlotwiseResult run_repetition_slotwise_mc_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  RCB_REQUIRE(channels.num_channels >= 1 &&
              channels.num_channels <= kMaxChannels);
  RCB_REQUIRE(channels.hops.empty() || channels.hops.size() >= actions.size());
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }
  const std::uint64_t valid = channels.valid_mask();

  McSlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<McSlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());
  std::array<std::uint32_t, kMaxChannels> count{};
  std::array<Payload, kMaxChannels> payload{};

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const std::uint64_t mask =
        adversary.jam_mask(slot, channels.num_channels, history) & valid;
    result.jam_charges += std::popcount(mask);
    if (mask != 0) ++result.jammed_slots;

    std::uint64_t sender_channels = 0;
    std::uint32_t senders_total = 0;
    listeners.clear();
    // Dense reference: two Bernoullis per node per slot, in node order —
    // the same draw order as the single-channel dense engine, so C=1 with
    // the equivalent adversary is draw-for-draw identical.
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (faults != nullptr && faults->node_down(u, slot)) continue;
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++result.event_count;
        const std::uint32_t ch = channels.channel_of(u, slot);
        if ((sender_channels >> ch & 1) == 0) count[ch] = 0;
        sender_channels |= std::uint64_t{1} << ch;
        ++count[ch];
        ++senders_total;
        payload[ch] = a.payload;
        if (faults != nullptr && faults->node_skewed(u)) {
          payload[ch] = Payload::kNoise;
        }
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        ++result.event_count;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      const std::uint32_t ch = channels.channel_of(u, slot);
      const std::uint32_t sender_count =
          (sender_channels >> ch & 1) != 0 ? count[ch] : 0;
      Reception heard =
          resolve(sender_count, payload[ch], ((mask >> ch) & 1) != 0);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }

    history.push_back(
        McSlotActivity{slot, sender_channels, mask, senders_total});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
