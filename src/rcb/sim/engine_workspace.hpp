// Per-thread arena-backed scratch state for the channel engines.
//
// Both engines presample per-node schedules into flat arrays and sweep them;
// the arrays live for one phase and their sizes repeat almost exactly from
// phase to phase and trial to trial.  Each engine thread owns one
// EngineWorkspace whose Arena backs every such array:
//
//   * within a trial, buffers are clear()ed between phases (capacity kept);
//   * between trials, the trial driver calls engine_workspace_begin_trial(),
//     which resets the arena and detaches the buffers.  The next trial's
//     allocation sequence replays the same addresses — per-trial state never
//     touches the global heap, and two runs of one trial see identical
//     memory layout (a determinism aid when diffing executions).
//
// Missing the begin_trial() call is safe: buffers then simply retain their
// high-water capacity like ordinary vectors, growing only when a later
// phase needs more than any phase before it.
#pragma once

#include <cstdint>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/arena.hpp"
#include "rcb/common/types.hpp"

namespace rcb {

/// Packed send/listen event key, the engines' hot schedule representation:
///
///     bits 63..30   slot
///     bits 29..24   channel
///     bit  23       is_listen
///     bits 22..0    node
///
/// Sorting packed keys as plain u64s reproduces the engines' event order
/// exactly: by slot, then by channel, senders before listeners, then by
/// node.  Single-channel phases pack channel 0 everywhere, so their sort
/// order (and hence the engines' event order) is unchanged from the
/// pre-multi-channel layout.
namespace event_key {

inline constexpr int kNodeBits = 23;
inline constexpr int kChannelBits = 6;
inline constexpr int kChannelShift = kNodeBits + 1;
inline constexpr int kSlotShift = kChannelShift + kChannelBits;
inline constexpr std::uint64_t kListenBit = std::uint64_t{1} << kNodeBits;
inline constexpr std::uint64_t kNodeMask = kListenBit - 1;
inline constexpr std::uint64_t kChannelMask =
    (std::uint64_t{1} << kChannelBits) - 1;
/// Largest node count / slot count the packing admits (engines RCB_REQUIRE
/// these; both are far beyond any simulated configuration).
inline constexpr std::uint64_t kMaxNodes = kListenBit;
inline constexpr std::uint64_t kMaxSlots = std::uint64_t{1}
                                           << (64 - kSlotShift);

inline std::uint64_t pack(SlotIndex slot, std::uint32_t channel,
                          bool is_listen, NodeId node) {
  return (slot << kSlotShift) |
         (static_cast<std::uint64_t>(channel) << kChannelShift) |
         (is_listen ? kListenBit : 0) | node;
}
inline SlotIndex slot(std::uint64_t key) { return key >> kSlotShift; }
inline std::uint32_t channel(std::uint64_t key) {
  return static_cast<std::uint32_t>((key >> kChannelShift) & kChannelMask);
}
inline bool is_listen(std::uint64_t key) { return (key & kListenBit) != 0; }
inline NodeId node(std::uint64_t key) {
  return static_cast<NodeId>(key & kNodeMask);
}

}  // namespace event_key

/// The per-thread scratch arrays; engines clear() what they use per phase.
struct EngineWorkspace {
  Arena arena;
  /// Sorted packed event keys for the current phase.
  ArenaVector<std::uint64_t> events{arena};
  /// One node's send slots (listen/send half-duplex collision filter).
  ArenaVector<SlotIndex> send_slots{arena};
  /// Materialized adversary history (slotwise engine).
  ArenaVector<SlotActivity> history{arena};
  /// Materialized adversary history (multi-channel slotwise engine).
  ArenaVector<McSlotActivity> mc_history{arena};
  /// Per-node effective payload for the phase, skew already applied
  /// (parallel array indexed by node).
  ArenaVector<std::uint8_t> payloads{arena};

  /// Resets the arena and detaches every buffer.
  void begin_trial();
};

/// This thread's workspace (created on first use).
EngineWorkspace& engine_workspace();

/// Trial boundary hook: resets this thread's workspace so the trial's engine
/// state replays from the start of the arena.  Called by the trial drivers
/// (run_trials, run_scenario_trial); cheap enough for per-trial use.
void engine_workspace_begin_trial();

}  // namespace rcb
