// Composable fault injection for the channel engines and protocols.
//
// The paper's model assumes ideal devices: nodes never crash, clocks never
// drift, and receptions are classified perfectly (modulo the optional CCA
// error model).  A FaultPlan layers deterministic, RNG-stream-driven device
// and environment faults on top of that ideal channel so that every
// protocol and adversary in the library can be exercised under degraded
// conditions without modification:
//
//   * crash/restart churn   — nodes go dark for stretches of (global) slots
//     following per-node geometric up/down timelines; a down node neither
//     sends nor listens.  Eligibility can be restricted to a deterministic
//     fraction of the fleet (`crash_fraction`).
//   * message loss          — a decodable reception (m or a nack) fades
//     below the detection threshold and is heard as *clear*.
//   * message corruption    — a decodable reception is garbled and heard as
//     *noise* (energy detected, payload lost).
//   * clock skew            — a node may desynchronise for a whole phase:
//     its transmissions straddle slot boundaries (heard as noise) and it
//     cannot decode messages (m/nack receptions degrade to noise).
//   * battery brownout      — from a given global slot on, a deterministic
//     fraction of nodes has its battery capacity scaled down (protocols
//     with a `node_energy_budget` apply the factor; see broadcast_engine).
//   * time-varying CCA degradation — extra false-busy / missed-detection
//     probability that ramps in linearly over `cca_ramp_slots` global slots
//     (e.g. a rising interference floor), applied after the protocol's own
//     CcaModel.
//
// Determinism contract: all *node-level* fault decisions (crash timelines,
// brownout eligibility, per-phase skew) are pure functions of the fault
// seed and are identical across engines — the batch and slotwise engines
// see the same nodes down in the same slots.  *Per-reception* decisions
// (loss, corruption, CCA degradation) draw from the engine's main Rng, so
// they are deterministic per run but consume the stream in engine-specific
// order.  A FaultPlan is stateful (it tracks the global slot origin across
// phases); use one plan per execution, or call reset() between runs, and
// never share a plan across threads.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

/// Tunable fault model; all rates default to 0 (no faults).
struct FaultConfig {
  std::uint64_t seed = 0;    ///< master seed for the fault RNG streams

  // -- crash/restart churn ------------------------------------------------
  double crash_rate = 0.0;    ///< per-slot P(an up, eligible node crashes)
  double restart_rate = 0.0;  ///< per-slot P(a crashed node restarts); 0 = never
  double crash_fraction = 1.0;  ///< deterministic fraction of nodes eligible

  // -- channel faults -------------------------------------------------------
  double loss_rate = 0.0;        ///< P(m/nack reception fades to clear)
  double corruption_rate = 0.0;  ///< P(m/nack reception garbles to noise)
  double clock_skew_rate = 0.0;  ///< per-phase P(a node is desynchronised)

  // -- battery brownout -----------------------------------------------------
  SlotIndex brownout_slot = kNoSlot;  ///< global slot the brownout begins
  double brownout_fraction = 0.0;     ///< fraction of nodes affected
  double brownout_factor = 0.5;       ///< battery capacity multiplier

  // -- time-varying CCA degradation ----------------------------------------
  double cca_false_busy = 0.0;        ///< added P(clear read as noise) at full ramp
  double cca_missed_detection = 0.0;  ///< added P(noise read as clear) at full ramp
  SlotCount cca_ramp_slots = 0;       ///< slots to reach full degradation (0 = immediate)

  /// True if any fault channel is switched on.
  bool any_active() const;
};

/// Deterministic fault injector threaded through the channel engines.
class FaultPlan {
 public:
  /// Inactive plan: every query is a no-op.
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config);

  bool active() const { return active_; }
  const FaultConfig& config() const { return config_; }

  /// Restores the plan to its just-constructed state (global clock to 0,
  /// timelines cleared) so one plan can serve repeated identical runs.
  void reset();

  // -- phase lifecycle (called by the engines) ------------------------------

  /// Registers the start of a phase of `num_slots` slots involving
  /// `node_count` nodes.  Advances the global slot origin past the previous
  /// phase and draws this phase's per-node clock-skew flags.
  void begin_phase(std::uint32_t node_count, SlotCount num_slots);

  /// Global slot index at which the current phase begins.
  SlotIndex phase_origin() const { return origin_; }

  // -- node-level queries ---------------------------------------------------

  /// True if node u is crashed during `slot_in_phase` of the current phase.
  bool node_down(NodeId u, SlotIndex slot_in_phase) {
    return node_down_at(u, origin_ + slot_in_phase);
  }

  /// True if node u is crashed at an absolute global slot.  Timelines are
  /// engine-independent: identical for every engine sharing the fault seed.
  bool node_down_at(NodeId u, SlotIndex global_slot);

  /// True if node u is desynchronised for the current phase.
  bool node_skewed(NodeId u) const {
    return u < skewed_.size() && skewed_[u];
  }

  /// Battery capacity multiplier for node u at a global slot: 1.0 before
  /// the brownout (or for unaffected nodes), `brownout_factor` after.
  double battery_factor(NodeId u, SlotIndex global_slot) const;

  // -- channel-level queries ------------------------------------------------

  /// Applies loss/corruption/CCA-degradation to an ideal reception in
  /// `slot_in_phase` of the current phase.  Draws from `rng` (the engine's
  /// main stream).  Skew is NOT applied here — engines handle the sender
  /// and listener sides of skew separately.
  Reception degrade(Reception ideal, SlotIndex slot_in_phase, Rng& rng);

 private:
  /// Per-node crash/restart timeline: `toggles[k]` is the global slot at
  /// which the node's state flips (up at slot 0; even index = goes down).
  struct Timeline {
    std::vector<SlotIndex> toggles;
    Rng rng{0};
    bool eligible = false;
    bool exhausted = false;  ///< no further toggles will ever occur
    bool initialized = false;
  };

  void init_timeline(NodeId u);
  void extend_timeline(Timeline& tl, SlotIndex global_slot);
  double cca_ramp(SlotIndex global_slot) const;

  FaultConfig config_;
  bool active_ = false;
  SlotIndex origin_ = 0;
  SlotCount phase_slots_ = 0;
  std::uint64_t phase_index_ = 0;
  std::vector<bool> skewed_;
  std::vector<Timeline> timelines_;
};

}  // namespace rcb
