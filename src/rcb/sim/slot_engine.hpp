// Slot-by-slot simulation with a genuinely adaptive (reactive) adversary.
//
// The batch engine in repetition_engine.hpp restricts adversaries to the
// Lemma-1 canonical form (commit to a schedule before the phase, given only
// public history).  This engine instead walks the phase slot by slot and
// consults the adversary before each one, feeding it what it could actually
// observe: whether the previous slots carried transmissions and whether it
// jammed them.  It costs O(num_slots * num_nodes) and exists to (a)
// cross-check the batch engine and (b) empirically validate Lemma 1 —
// reactive jamming buys the adversary nothing (bench E10).
#pragma once

#include <span>
#include <vector>

#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

/// What the adversary can observe about an elapsed slot: transmissions are
/// physically detectable, listening is passive and invisible.
struct SlotActivity {
  SlotIndex slot = 0;
  std::uint32_t senders = 0;
  bool jammed = false;
};

/// Adversary interface for the slotwise engine.
class SlotAdversary {
 public:
  virtual ~SlotAdversary() = default;

  /// Called once per slot in order.  `history` holds the activity of all
  /// previous slots of this phase.  Return true to jam `slot`.
  virtual bool jam(SlotIndex slot, std::span<const SlotActivity> history) = 0;
};

/// Result of a slotwise phase: node observations plus the adversary's spend.
struct SlotwiseResult {
  RepetitionResult rep;
  SlotCount jammed_slots = 0;
};

/// Runs one phase slot by slot (1-uniform).  `cca` and `faults` mirror the
/// batch engine's parameters so the two engines stay cross-checkable under
/// imperfect CCA and an active fault plan.
SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng,
                                       const CcaModel& cca = CcaModel{},
                                       FaultPlan* faults = nullptr);

}  // namespace rcb
