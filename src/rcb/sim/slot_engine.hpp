// Event-driven simulation with a genuinely adaptive (reactive) adversary.
//
// The batch engine in repetition_engine.hpp restricts adversaries to the
// Lemma-1 canonical form (commit to a schedule before the phase, given only
// public history).  This engine instead consults the adversary before every
// slot, feeding it what it could actually observe: whether the previous
// slots carried transmissions and whether it jammed them.
//
// Node behaviour is i.i.d. per slot and — crucially — independent of
// jamming (jamming affects what listeners *hear*, never whether nodes act).
// The engine therefore presamples each node's send/listen slots with the
// same geometric skip sampling the batch engine uses, sweeps the slots in
// order, and touches nodes only on their event slots.  The adversary stays
// fully adaptive: it is consulted once per slot, in order, with the
// complete SlotActivity history (empty slots materialized as zero-sender
// records, or a bounded suffix when it declares a finite
// SlotAdversary::history_window()).  Cost: O(num_slots + events) instead of
// the dense O(num_slots * num_nodes) — one cheap virtual call per slot plus
// work proportional to the energy actually spent, the same quantity the
// paper's cost model charges for.
//
// run_repetition_slotwise_dense keeps the original per-node-per-slot loop
// as a semantic reference: tests cross-check the event path against it and
// bench M2 measures the gap.  Both paths implement identical per-slot
// marginals; they consume the Rng stream in different orders, so per-run
// values differ while Monte-Carlo distributions agree.
#pragma once

#include <span>
#include <vector>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

/// Result of a slotwise phase: node observations plus the adversary's spend.
struct SlotwiseResult {
  RepetitionResult rep;
  SlotCount jammed_slots = 0;
  /// Send + listen events the sweep actually touched (bench observability).
  std::uint64_t event_count = 0;
};

/// Runs one phase slot by slot (1-uniform), event-driven.  `cca` and
/// `faults` mirror the batch engine's parameters so the two engines stay
/// cross-checkable under imperfect CCA and an active fault plan.
SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng,
                                       const CcaModel& cca = CcaModel{},
                                       FaultPlan* faults = nullptr);

/// Reference implementation: the original dense O(num_slots * num_nodes)
/// loop drawing two Bernoullis per node per slot.  Semantically equivalent
/// to run_repetition_slotwise (identical per-slot marginals; different Rng
/// draw order).  Kept as the oracle for the engine crosscheck tests and as
/// the baseline bench M2 quantifies the event-driven speedup against.
SlotwiseResult run_repetition_slotwise_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    SlotAdversary& adversary, Rng& rng, const CcaModel& cca = CcaModel{},
    FaultPlan* faults = nullptr);

}  // namespace rcb
