#include "rcb/sim/engine_workspace.hpp"

namespace rcb {

void EngineWorkspace::begin_trial() {
  arena.reset();
  events.detach();
  send_slots.detach();
  history.detach();
  mc_history.detach();
  payloads.detach();
}

EngineWorkspace& engine_workspace() {
  thread_local EngineWorkspace workspace;
  return workspace;
}

void engine_workspace_begin_trial() { engine_workspace().begin_trial(); }

}  // namespace rcb
