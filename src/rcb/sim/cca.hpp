// Imperfect clear-channel assessment (CCA).
//
// The paper's model (section 1.2) assumes listeners classify slots
// perfectly: clear vs noise.  Real CCA hardware (see the paper's [33])
// misclassifies: a clear slot may read busy ("false busy", e.g. thermal
// noise over threshold) and a noisy slot may read clear ("missed
// detection").  Since Figure 2's whole control loop is driven by *counting
// clear slots*, CCA quality directly shapes the S_u dynamics — bench E12
// quantifies the sensitivity.
//
// Message/nack receptions are not affected: decoding either succeeds or
// the slot already counts as noise; CCA errors only swap the clear/noise
// classification of slots without a decodable transmission.
#pragma once

#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

struct CcaModel {
  double false_busy = 0.0;        ///< P(clear slot heard as noise)
  double missed_detection = 0.0;  ///< P(noisy slot heard as clear)

  bool perfect() const { return false_busy <= 0.0 && missed_detection <= 0.0; }

  /// Applies the error model to an ideal reception.
  Reception apply(Reception ideal, Rng& rng) const {
    if (ideal == Reception::kClear && rng.bernoulli(false_busy)) {
      return Reception::kNoise;
    }
    if (ideal == Reception::kNoise && rng.bernoulli(missed_detection)) {
      return Reception::kClear;
    }
    return ideal;
  }
};

}  // namespace rcb
