// Multi-channel slotwise engines: C parallel channels, per-(slot, channel)
// winner resolution, and an adversary that splits its budget across
// channels (adversary/slot_adversary.hpp, McSlotAdversary).
//
// Model.  Each slot, every node occupies exactly one channel, given by its
// deterministic hop sequence (sim/channel_plan.hpp); sends and listens land
// on that channel only.  Reception on channel c of a slot follows the
// single-channel rules applied to c alone: jammed (bit c of the adversary's
// mask) => noise; two or more senders => collision noise; exactly one
// sender => its payload; none => clear.  The adversary is consulted once
// per slot, in order, and returns a 64-bit jam mask; each jammed
// (slot, channel) pair is charged one budget unit, so concentrating on one
// channel costs 1 per slot while flooding all C channels costs C — the
// Chen–Zheng budget-split accounting.  Over maximal eventless runs the
// event engine offers the adversary the bulk McSlotAdversary::jam_run_masks
// consultation (RLE mask segments); declining falls back to per-slot
// jam_mask calls, bit-identically — the exact multi-channel analogue of the
// single-channel jam_run fast path.
//
// C=1 degeneration contract (load-bearing; enforced by tests and the fuzz
// differential oracle): with num_channels == 1, both engines here are
// draw-for-draw and byte-for-byte identical to their single-channel
// counterparts in slot_engine.hpp driven by the equivalent SlotAdversary —
// same Rng consumption, same event order, same observations, same history
// semantics.  The event path reuses the exact presample + sorted-key sweep
// of run_repetition_slotwise (channel bits pack as 0, preserving key
// order), and the dense path mirrors run_repetition_slotwise_dense's
// per-node-per-slot draw order.
//
// Like the single-channel pair, the two implementations share per-slot
// marginals but consume the Rng stream in different orders; on
// randomness-free action profiles (all probabilities 0 or 1, perfect CCA,
// no faults) they are exactly equal, which is what the multi-channel
// crosscheck oracle pins.
#pragma once

#include <span>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

/// Result of a multi-channel slotwise phase.
struct McSlotwiseResult {
  RepetitionResult rep;
  /// Total jammed (slot, channel) pairs — the adversary's budget spend for
  /// the phase under the per-channel accounting.
  Cost jam_charges = 0;
  /// Slots with at least one jammed channel.
  SlotCount jammed_slots = 0;
  /// Send + listen events the sweep actually touched (bench observability).
  std::uint64_t event_count = 0;
};

/// Event-driven multi-channel phase (the production path).
McSlotwiseResult run_repetition_slotwise_mc(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca = CcaModel{}, FaultPlan* faults = nullptr);

/// Reference implementation: dense O(num_slots * num_nodes) loop, the
/// semantic oracle the crosscheck tests pin the event path against.
McSlotwiseResult run_repetition_slotwise_mc_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    const ChannelPlan& channels, McSlotAdversary& adversary, Rng& rng,
    const CcaModel& cca = CcaModel{}, FaultPlan* faults = nullptr);

}  // namespace rcb
