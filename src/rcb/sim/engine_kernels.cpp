#include "rcb/sim/engine_kernels.hpp"

#include "rcb/common/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RCB_ENGINE_AVX2 1
#include <immintrin.h>
#endif

namespace rcb::engine_kernels {
namespace {

std::size_t count_keys_below_scalar(const std::uint64_t* keys,
                                    std::size_t count, std::uint64_t bound) {
  std::size_t i = 0;
  while (i < count && keys[i] < bound) ++i;
  return i;
}

void fill_history_scalar(SlotActivity* dst, SlotIndex first_slot,
                         SlotCount len, bool jammed) {
  for (SlotCount k = 0; k < len; ++k) {
    dst[k] = SlotActivity{first_slot + k, 0, jammed};
  }
}

void fill_mc_history_scalar(McSlotActivity* dst, SlotIndex first_slot,
                            SlotCount len, std::uint64_t jam_mask) {
  for (SlotCount k = 0; k < len; ++k) {
    dst[k] = McSlotActivity{first_slot + k, 0, jam_mask, 0};
  }
}

#ifdef RCB_ENGINE_AVX2

__attribute__((target("avx2"))) std::size_t count_keys_below_avx2(
    const std::uint64_t* keys, std::size_t count, std::uint64_t bound) {
  // AVX2 has signed 64-bit compares only; flipping the sign bit maps the
  // unsigned order onto the signed one.
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<std::int64_t>(std::uint64_t{1} << 63));
  const __m256i vbound = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<std::int64_t>(bound)), flip);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i k = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), flip);
    // Lane mask of keys[i..i+3] < bound; the keys are sorted, so the first
    // not-below lane ends the scan.
    const int below = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(vbound, k)));
    if (below != 0xF) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(~below & 0xF)));
    }
  }
  while (i < count && keys[i] < bound) ++i;
  return i;
}

__attribute__((target("avx2"))) void fill_history_avx2(SlotActivity* dst,
                                                       SlotIndex first_slot,
                                                       SlotCount len,
                                                       bool jammed) {
  static_assert(sizeof(SlotActivity) == 16);
  // One SlotActivity is {u64 slot; u32 senders; u8 jammed; pad} — two
  // records per 256-bit store: [slot, flags, slot+1, flags].
  const std::uint64_t flags = jammed ? (std::uint64_t{1} << 32) : 0;
  SlotCount k = 0;
  if (len >= 2) {
    __m256i rec = _mm256_set_epi64x(
        static_cast<std::int64_t>(flags),
        static_cast<std::int64_t>(first_slot + 1),
        static_cast<std::int64_t>(flags), static_cast<std::int64_t>(first_slot));
    const __m256i step = _mm256_set_epi64x(0, 2, 0, 2);
    for (; k + 2 <= len; k += 2) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k), rec);
      rec = _mm256_add_epi64(rec, step);
    }
  }
  for (; k < len; ++k) dst[k] = SlotActivity{first_slot + k, 0, jammed};
}

__attribute__((target("avx2"))) void fill_mc_history_avx2(
    McSlotActivity* dst, SlotIndex first_slot, SlotCount len,
    std::uint64_t jam_mask) {
  static_assert(sizeof(McSlotActivity) == 32);
  // One McSlotActivity is {u64 slot; u64 sender_channels; u64 jam_mask;
  // u32 senders; pad} — exactly one record per 256-bit store with lanes
  // [slot, 0, jam_mask, 0].
  __m256i rec = _mm256_set_epi64x(
      0, static_cast<std::int64_t>(jam_mask), 0,
      static_cast<std::int64_t>(first_slot));
  const __m256i step = _mm256_set_epi64x(0, 0, 0, 1);
  for (SlotCount k = 0; k < len; ++k) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k), rec);
    rec = _mm256_add_epi64(rec, step);
  }
}

#endif  // RCB_ENGINE_AVX2

}  // namespace

std::size_t count_keys_below(const std::uint64_t* keys, std::size_t count,
                             std::uint64_t bound) {
#ifdef RCB_ENGINE_AVX2
  if (count >= 8 && simd::active_mode() == simd::Mode::kAvx2) {
    return count_keys_below_avx2(keys, count, bound);
  }
#endif
  return count_keys_below_scalar(keys, count, bound);
}

void fill_history_records(SlotActivity* dst, SlotIndex first_slot,
                          SlotCount len, bool jammed) {
#ifdef RCB_ENGINE_AVX2
  if (len >= 8 && simd::active_mode() == simd::Mode::kAvx2) {
    fill_history_avx2(dst, first_slot, len, jammed);
    return;
  }
#endif
  fill_history_scalar(dst, first_slot, len, jammed);
}

void fill_mc_history_records(McSlotActivity* dst, SlotIndex first_slot,
                             SlotCount len, std::uint64_t jam_mask) {
#ifdef RCB_ENGINE_AVX2
  if (len >= 8 && simd::active_mode() == simd::Mode::kAvx2) {
    fill_mc_history_avx2(dst, first_slot, len, jam_mask);
    return;
  }
#endif
  fill_mc_history_scalar(dst, first_slot, len, jam_mask);
}

}  // namespace rcb::engine_kernels
