#include "rcb/sim/repetition_engine.hpp"

#include <algorithm>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"
#include "rcb/sim/engine_kernels.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {
namespace {

Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

}  // namespace

RepetitionResult run_repetition_luniform(
    SlotCount num_slots, std::span<const NodeAction> actions,
    std::span<const std::uint32_t> partition,
    std::span<const JamSchedule> schedules, Rng& rng, Trace* trace,
    const CcaModel& cca, FaultPlan* faults) {
  RCB_REQUIRE(actions.size() == partition.size());
  RCB_REQUIRE(!schedules.empty());
  for (std::uint32_t p : partition) RCB_REQUIRE(p < schedules.size());
  RCB_REQUIRE(actions.size() <= event_key::kMaxNodes);
  RCB_REQUIRE(num_slots <= event_key::kMaxSlots);

  // Cooperative cancellation checkpoint: one poll per repetition keeps a
  // watchdogged or slot-budgeted trial from stalling a sweep for more than
  // one phase, at no per-slot cost.
  poll_cancellation(num_slots);

  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  RepetitionResult result;
  result.obs.resize(actions.size());

  EngineWorkspace& ws = engine_workspace();
  const detail::SkipBlockFn skip_block = detail::skip_block_fn();
  ws.events.clear();
  // Size the event buffer from the expected activity: one event per success
  // of each node's per-slot send/listen Bernoullis.
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  ws.events.reserve(static_cast<std::size_t>(
                        expected_rate * static_cast<double>(num_slots)) +
                    16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    engine_kernels::presample_node_events(u, actions[u], num_slots, rng, ws,
                                          faults, skip_block);
  }
  std::sort(ws.events.begin(), ws.events.end());

  // Per-node effective payload with sender-side clock skew applied (skew is
  // fixed per phase).
  ws.payloads.clear();
  ws.payloads.reserve(actions.size());
  for (NodeId u = 0; u < actions.size(); ++u) {
    Payload p = actions[u].payload;
    if (faults != nullptr && faults->node_skewed(u)) p = Payload::kNoise;
    ws.payloads.push_back(static_cast<std::uint8_t>(p));
  }

  // Sweep slot groups: count senders, then deliver receptions to listeners.
  const std::uint64_t* keys = ws.events.data();
  const std::size_t num_events = ws.events.size();
  std::size_t i = 0;
  while (i < num_events) {
    const SlotIndex slot = event_key::slot(keys[i]);
    const std::size_t group_end =
        i + engine_kernels::count_keys_below(
                keys + i, num_events - i, event_key::pack(slot + 1, 0, false, 0));
    const std::size_t senders_end =
        i + engine_kernels::count_keys_below(
                keys + i, group_end - i, event_key::pack(slot, 0, true, 0));

    const auto sender_count = static_cast<std::uint32_t>(senders_end - i);
    Payload single_payload = Payload::kNoise;
    for (std::size_t j = i; j < senders_end; ++j) {
      const NodeId u = event_key::node(keys[j]);
      // A clock-skewed transmitter straddles slot boundaries: its signal is
      // energy without a decodable payload (folded into ws.payloads).
      single_payload = static_cast<Payload>(ws.payloads[u]);
      ++result.obs[u].sends;
    }

    std::uint32_t listener_count = 0;
    bool any_jam_seen = false;
    for (std::size_t j = senders_end; j < group_end; ++j) {
      const NodeId u = event_key::node(keys[j]);
      NodeObservation& o = result.obs[u];
      ++o.listens;
      ++listener_count;
      const bool jammed = schedules[partition[u]].is_jammed(slot);
      any_jam_seen = any_jam_seen || jammed;
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        // A skewed listener samples the channel off the slot grid: it can
        // still detect energy but cannot decode a payload.
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      switch (heard) {
        case Reception::kClear:
          ++o.clear;
          break;
        case Reception::kMessage:
          ++o.messages;
          if (o.first_message_slot == kNoSlot) {
            o.first_message_slot = slot;
            o.listens_until_first_message = o.listens;
          }
          break;
        case Reception::kNack:
          ++o.nacks;
          break;
        case Reception::kNoise:
          ++o.noise;
          break;
      }
    }
    if (trace != nullptr) {
      trace->record(slot, sender_count, listener_count, any_jam_seen);
    }
    i = group_end;
  }

  // Nodes that never heard m listened for the whole phase.
  for (auto& o : result.obs) {
    if (o.first_message_slot == kNoSlot) o.listens_until_first_message = o.listens;
  }
  return result;
}

RepetitionResult run_repetition(SlotCount num_slots,
                                std::span<const NodeAction> actions,
                                const JamSchedule& jam, Rng& rng,
                                Trace* trace, const CcaModel& cca,
                                FaultPlan* faults) {
  thread_local std::vector<std::uint32_t> partition;
  partition.assign(actions.size(), 0);
  return run_repetition_luniform(num_slots, actions, partition,
                                 std::span<const JamSchedule>(&jam, 1), rng,
                                 trace, cca, faults);
}

}  // namespace rcb
