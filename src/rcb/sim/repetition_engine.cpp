#include "rcb/sim/repetition_engine.hpp"

#include <algorithm>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"

namespace rcb {
namespace {

// A send or listen event at a specific slot.  Sorted so that the sweep sees
// all of a slot's senders before its listeners.
struct Event {
  SlotIndex slot;
  NodeId node;
  bool is_listen;

  friend bool operator<(const Event& a, const Event& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.is_listen != b.is_listen) return !a.is_listen;  // senders first
    return a.node < b.node;
  }
};

// Generates all events for one node.  Listens that collide with the node's
// own sends are dropped (half-duplex: the send wins and is the only charge).
// A node that is crashed in a slot (fault injection) neither sends nor
// listens there; the slots are sampled regardless, so the main Rng stream
// is consumed identically with and without an active FaultPlan.
void generate_node_events(NodeId u, const NodeAction& action,
                          SlotCount num_slots, Rng& rng,
                          std::vector<Event>& events, FaultPlan* faults) {
  thread_local std::vector<SlotIndex> send_slots;
  sample_bernoulli_slots(num_slots, action.send_prob, rng, send_slots);
  for (SlotIndex s : send_slots) {
    if (faults != nullptr && faults->node_down(u, s)) continue;
    events.push_back(Event{s, u, false});
  }

  BernoulliSlotSampler listens(num_slots, action.listen_prob, rng);
  std::size_t si = 0;  // cursor into send_slots
  for (SlotIndex s = listens.next(); s != BernoulliSlotSampler::kEnd;
       s = listens.next()) {
    while (si < send_slots.size() && send_slots[si] < s) ++si;
    if (si < send_slots.size() && send_slots[si] == s) continue;  // busy sending
    if (faults != nullptr && faults->node_down(u, s)) continue;
    events.push_back(Event{s, u, true});
  }
}

Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

}  // namespace

RepetitionResult run_repetition_luniform(
    SlotCount num_slots, std::span<const NodeAction> actions,
    std::span<const std::uint32_t> partition,
    std::span<const JamSchedule> schedules, Rng& rng, Trace* trace,
    const CcaModel& cca, FaultPlan* faults) {
  RCB_REQUIRE(actions.size() == partition.size());
  RCB_REQUIRE(!schedules.empty());
  for (std::uint32_t p : partition) RCB_REQUIRE(p < schedules.size());

  // Cooperative cancellation checkpoint: one poll per repetition keeps a
  // watchdogged or slot-budgeted trial from stalling a sweep for more than
  // one phase, at no per-slot cost.
  poll_cancellation(num_slots);

  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  RepetitionResult result;
  result.obs.resize(actions.size());

  thread_local std::vector<Event> events;
  events.clear();
  // Size the event buffer from the expected activity: one event per success
  // of each node's per-slot send/listen Bernoullis.
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  events.reserve(static_cast<std::size_t>(
                     expected_rate * static_cast<double>(num_slots)) +
                 16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    generate_node_events(u, actions[u], num_slots, rng, events, faults);
  }
  std::sort(events.begin(), events.end());

  // Sweep slot groups: count senders, then deliver receptions to listeners.
  std::size_t i = 0;
  while (i < events.size()) {
    const SlotIndex slot = events[i].slot;
    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    std::size_t j = i;
    for (; j < events.size() && events[j].slot == slot && !events[j].is_listen;
         ++j) {
      ++sender_count;
      single_payload = actions[events[j].node].payload;
      // A clock-skewed transmitter straddles slot boundaries: its signal is
      // energy without a decodable payload.
      if (faults != nullptr && faults->node_skewed(events[j].node)) {
        single_payload = Payload::kNoise;
      }
      ++result.obs[events[j].node].sends;
    }
    std::uint32_t listener_count = 0;
    bool any_jam_seen = false;
    for (; j < events.size() && events[j].slot == slot; ++j) {
      const NodeId u = events[j].node;
      NodeObservation& o = result.obs[u];
      ++o.listens;
      ++listener_count;
      const bool jammed = schedules[partition[u]].is_jammed(slot);
      any_jam_seen = any_jam_seen || jammed;
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        // A skewed listener samples the channel off the slot grid: it can
        // still detect energy but cannot decode a payload.
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      switch (heard) {
        case Reception::kClear:
          ++o.clear;
          break;
        case Reception::kMessage:
          ++o.messages;
          if (o.first_message_slot == kNoSlot) {
            o.first_message_slot = slot;
            o.listens_until_first_message = o.listens;
          }
          break;
        case Reception::kNack:
          ++o.nacks;
          break;
        case Reception::kNoise:
          ++o.noise;
          break;
      }
    }
    if (trace != nullptr) {
      trace->record(slot, sender_count, listener_count, any_jam_seen);
    }
    i = j;
  }

  // Nodes that never heard m listened for the whole phase.
  for (auto& o : result.obs) {
    if (o.first_message_slot == kNoSlot) o.listens_until_first_message = o.listens;
  }
  return result;
}

RepetitionResult run_repetition(SlotCount num_slots,
                                std::span<const NodeAction> actions,
                                const JamSchedule& jam, Rng& rng,
                                Trace* trace, const CcaModel& cca,
                                FaultPlan* faults) {
  thread_local std::vector<std::uint32_t> partition;
  partition.assign(actions.size(), 0);
  return run_repetition_luniform(num_slots, actions, partition,
                                 std::span<const JamSchedule>(&jam, 1), rng,
                                 trace, cca, faults);
}

}  // namespace rcb
