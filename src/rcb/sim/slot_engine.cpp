#include "rcb/sim/slot_engine.hpp"

#include "rcb/common/contracts.hpp"

namespace rcb {

SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng,
                                       const CcaModel& cca, FaultPlan* faults) {
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<SlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const bool jammed = adversary.jam(slot, history);
    if (jammed) ++result.jammed_slots;

    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    listeners.clear();
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (faults != nullptr && faults->node_down(u, slot)) continue;
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++sender_count;
        single_payload = a.payload;
        if (faults != nullptr && faults->node_skewed(u)) {
          single_payload = Payload::kNoise;
        }
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      Reception heard;
      if (jammed || sender_count > 1 ||
          (sender_count == 1 && single_payload == Payload::kNoise)) {
        heard = Reception::kNoise;
      } else if (sender_count == 0) {
        heard = Reception::kClear;
      } else if (single_payload == Payload::kMessage) {
        heard = Reception::kMessage;
      } else {
        heard = Reception::kNack;
      }
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      switch (heard) {
        case Reception::kClear:
          ++o.clear;
          break;
        case Reception::kMessage:
          ++o.messages;
          if (o.first_message_slot == kNoSlot) {
            o.first_message_slot = slot;
            o.listens_until_first_message = o.listens;
          }
          break;
        case Reception::kNack:
          ++o.nacks;
          break;
        case Reception::kNoise:
          ++o.noise;
          break;
      }
    }

    history.push_back(SlotActivity{slot, sender_count, jammed});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
