#include "rcb/sim/slot_engine.hpp"

#include "rcb/common/contracts.hpp"

namespace rcb {

SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng) {
  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<SlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const bool jammed = adversary.jam(slot, history);
    if (jammed) ++result.jammed_slots;

    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    listeners.clear();
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++sender_count;
        single_payload = a.payload;
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      if (jammed || sender_count > 1 ||
          (sender_count == 1 && single_payload == Payload::kNoise)) {
        ++o.noise;
      } else if (sender_count == 0) {
        ++o.clear;
      } else if (single_payload == Payload::kMessage) {
        ++o.messages;
        if (o.first_message_slot == kNoSlot) {
          o.first_message_slot = slot;
          o.listens_until_first_message = o.listens;
        }
      } else {
        ++o.nacks;
      }
    }

    history.push_back(SlotActivity{slot, sender_count, jammed});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
