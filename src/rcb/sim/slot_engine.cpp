#include "rcb/sim/slot_engine.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"
#include "rcb/sim/engine_kernels.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {
namespace {

Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

void record(NodeObservation& o, Reception heard, SlotIndex slot) {
  switch (heard) {
    case Reception::kClear:
      ++o.clear;
      break;
    case Reception::kMessage:
      ++o.messages;
      if (o.first_message_slot == kNoSlot) {
        o.first_message_slot = slot;
        o.listens_until_first_message = o.listens;
      }
      break;
    case Reception::kNack:
      ++o.nacks;
      break;
    case Reception::kNoise:
      ++o.noise;
      break;
  }
}

// Materializes the history of an accepted jam_run: `sink` covers the
// eventless run starting at `first_slot`.  Only the trailing `window`
// records of a bounded buffer can ever be observed again, so a run at least
// that long replaces the buffer with just its own tail — this is what makes
// long eventless runs O(segments) instead of O(slots) for the O(1)-lookback
// adversaries the fast path exists for.
void append_run_history(ArenaVector<SlotActivity>& history,
                        SlotIndex first_slot, const JamRunSink& sink,
                        SlotCount window, bool bounded) {
  if (window == 0) return;
  const SlotCount len = sink.total();
  if (bounded && len >= window) {
    history.clear();
    const SlotIndex start = first_slot + len - window;
    SlotIndex cur = first_slot;
    for (const JamRunSink::Segment& seg : sink.segments()) {
      const SlotIndex seg_end = cur + seg.length;
      if (seg_end > start) {
        const SlotIndex lo = cur > start ? cur : start;
        engine_kernels::fill_history_records(
            history.append_uninitialized(seg_end - lo), lo, seg_end - lo,
            seg.decision);
      }
      cur = seg_end;
    }
    return;
  }
  SlotIndex cur = first_slot;
  for (const JamRunSink::Segment& seg : sink.segments()) {
    engine_kernels::fill_history_records(
        history.append_uninitialized(seg.length), cur, seg.length,
        seg.decision);
    cur += seg.length;
  }
  if (bounded && history.size() >= 2 * static_cast<std::size_t>(window)) {
    history.erase_prefix(history.size() - static_cast<std::size_t>(window));
  }
}

}  // namespace

SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng,
                                       const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  RCB_REQUIRE(actions.size() <= event_key::kMaxNodes);
  RCB_REQUIRE(num_slots <= event_key::kMaxSlots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  // Presample every node's activity into packed event keys.  Node action
  // draws are independent of jamming, so committing them up front leaves
  // the adversary's adaptivity intact: it still decides each slot knowing
  // everything it could have physically observed up to that slot.
  EngineWorkspace& ws = engine_workspace();
  const detail::SkipBlockFn skip_block = detail::skip_block_fn();
  ws.events.clear();
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  ws.events.reserve(static_cast<std::size_t>(
                        expected_rate * static_cast<double>(num_slots)) +
                    16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    engine_kernels::presample_node_events(u, actions[u], num_slots, rng, ws,
                                          faults, skip_block);
  }
  std::sort(ws.events.begin(), ws.events.end());
  result.event_count = ws.events.size();

  // Per-node effective payload, sender-side clock skew applied (skew is
  // fixed per phase, so this flat array replaces a FaultPlan query per
  // sender event).
  ws.payloads.clear();
  ws.payloads.reserve(actions.size());
  for (NodeId u = 0; u < actions.size(); ++u) {
    Payload p = actions[u].payload;
    if (faults != nullptr && faults->node_skewed(u)) p = Payload::kNoise;
    ws.payloads.push_back(static_cast<std::uint8_t>(p));
  }

  // History buffer.  When the adversary declares a finite lookback window
  // we keep only a bounded suffix, compacting amortized-O(1); otherwise
  // every elapsed slot is materialized (empty slots as zero-sender
  // records).
  const SlotCount window = adversary.history_window();
  // A window covering the whole phase is equivalent to unbounded (and never
  // needs compaction, so 2 * window below cannot overflow).
  const bool bounded =
      window != SlotAdversary::kUnboundedHistory && window < num_slots;
  ArenaVector<SlotActivity>& history = ws.history;
  history.clear();
  if (!bounded) history.reserve(num_slots);

  const auto history_view = [&]() -> std::span<const SlotActivity> {
    if (!bounded) return history.view();
    const std::size_t keep =
        std::min<std::size_t>(history.size(), static_cast<std::size_t>(window));
    return {history.data() + (history.size() - keep), keep};
  };

  const std::uint64_t* keys = ws.events.data();
  const std::size_t num_events = ws.events.size();
  JamRunSink sink;

  std::size_t i = 0;  // cursor into the sorted keys
  SlotIndex slot = 0;
  while (slot < num_slots) {
    const SlotIndex next_event_slot =
        i < num_events ? event_key::slot(keys[i]) : num_slots;
    if (slot < next_event_slot) {
      // Maximal eventless run [slot, next_event_slot): every record is a
      // zero-sender record, so the adversary may answer it in bulk.
      sink.reset();
      if (adversary.jam_run(slot, next_event_slot, history_view(), sink)) {
        RCB_REQUIRE(sink.total() == next_event_slot - slot);
        for (const JamRunSink::Segment& seg : sink.segments()) {
          if (seg.decision) result.jammed_slots += seg.length;
        }
        append_run_history(history, slot, sink, window, bounded);
      } else {
        // Declined: per-slot consultation, bit-identical to the pre-SoA
        // engine's every-slot loop.
        for (SlotIndex s = slot; s < next_event_slot; ++s) {
          const bool jammed = adversary.jam(s, history_view());
          if (jammed) ++result.jammed_slots;
          if (window > 0) {
            engine_kernels::push_history_compacted(
                history, SlotActivity{s, 0, jammed}, window, bounded);
          }
        }
      }
      slot = next_event_slot;
      continue;
    }

    // Event slot: consult the adversary, then settle senders and listeners.
    const bool jammed = adversary.jam(slot, history_view());
    if (jammed) ++result.jammed_slots;

    // slot + 1 == kMaxSlots would overflow the 34-bit slot field of pack()
    // (the key wraps to zero), so the last representable slot's group is
    // bounded by the key array directly.
    const std::size_t group_end =
        slot + 1 < event_key::kMaxSlots
            ? i + engine_kernels::count_keys_below(
                      keys + i, num_events - i,
                      event_key::pack(slot + 1, 0, false, 0))
            : num_events;
    const std::size_t senders_end =
        i + engine_kernels::count_keys_below(
                keys + i, group_end - i, event_key::pack(slot, 0, true, 0));

    const auto sender_count = static_cast<std::uint32_t>(senders_end - i);
    Payload single_payload = Payload::kNoise;
    for (std::size_t j = i; j < senders_end; ++j) {
      const NodeId u = event_key::node(keys[j]);
      single_payload = static_cast<Payload>(ws.payloads[u]);
      ++result.rep.obs[u].sends;
    }
    for (std::size_t j = senders_end; j < group_end; ++j) {
      const NodeId u = event_key::node(keys[j]);
      NodeObservation& o = result.rep.obs[u];
      ++o.listens;
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }
    i = group_end;

    if (window > 0) {
      engine_kernels::push_history_compacted(
          history, SlotActivity{slot, sender_count, jammed}, window, bounded);
    }
    ++slot;
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

SlotwiseResult run_repetition_slotwise_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    SlotAdversary& adversary, Rng& rng, const CcaModel& cca,
    FaultPlan* faults) {
  poll_cancellation(num_slots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<SlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const bool jammed = adversary.jam(slot, history);
    if (jammed) ++result.jammed_slots;

    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    listeners.clear();
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (faults != nullptr && faults->node_down(u, slot)) continue;
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++result.event_count;
        ++sender_count;
        single_payload = a.payload;
        if (faults != nullptr && faults->node_skewed(u)) {
          single_payload = Payload::kNoise;
        }
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        ++result.event_count;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }

    history.push_back(SlotActivity{slot, sender_count, jammed});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
