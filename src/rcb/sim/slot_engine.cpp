#include "rcb/sim/slot_engine.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/cancel.hpp"

namespace rcb {
namespace {

// A send or listen event at a specific slot.  Sorted so that the sweep sees
// all of a slot's senders before its listeners.
struct SlotEvent {
  SlotIndex slot;
  NodeId node;
  bool is_listen;

  friend bool operator<(const SlotEvent& a, const SlotEvent& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.is_listen != b.is_listen) return !a.is_listen;  // senders first
    return a.node < b.node;
  }
};

Reception resolve(std::uint32_t sender_count, Payload single_payload,
                  bool jammed) {
  if (jammed) return Reception::kNoise;
  if (sender_count == 0) return Reception::kClear;
  if (sender_count > 1) return Reception::kNoise;
  switch (single_payload) {
    case Payload::kMessage:
      return Reception::kMessage;
    case Payload::kNack:
      return Reception::kNack;
    case Payload::kNoise:
      return Reception::kNoise;
  }
  return Reception::kNoise;
}

void record(NodeObservation& o, Reception heard, SlotIndex slot) {
  switch (heard) {
    case Reception::kClear:
      ++o.clear;
      break;
    case Reception::kMessage:
      ++o.messages;
      if (o.first_message_slot == kNoSlot) {
        o.first_message_slot = slot;
        o.listens_until_first_message = o.listens;
      }
      break;
    case Reception::kNack:
      ++o.nacks;
      break;
    case Reception::kNoise:
      ++o.noise;
      break;
  }
}

// Presamples one node's send/listen slots with the same skip sampling the
// batch engine uses.  Listens that collide with the node's own sends are
// dropped (half-duplex: the send wins and is the only charge).  A node that
// is crashed in a slot neither sends nor listens there; the slots are
// sampled regardless, so the main Rng stream is consumed identically with
// and without an active FaultPlan.
void generate_node_events(NodeId u, const NodeAction& action,
                          SlotCount num_slots, Rng& rng,
                          std::vector<SlotEvent>& events, FaultPlan* faults) {
  thread_local std::vector<SlotIndex> send_slots;
  sample_bernoulli_slots(num_slots, action.send_prob, rng, send_slots);
  for (SlotIndex s : send_slots) {
    if (faults != nullptr && faults->node_down(u, s)) continue;
    events.push_back(SlotEvent{s, u, false});
  }

  BernoulliSlotSampler listens(num_slots, action.listen_prob, rng);
  std::size_t si = 0;  // cursor into send_slots
  for (SlotIndex s = listens.next(); s != BernoulliSlotSampler::kEnd;
       s = listens.next()) {
    while (si < send_slots.size() && send_slots[si] < s) ++si;
    if (si < send_slots.size() && send_slots[si] == s) continue;  // busy sending
    if (faults != nullptr && faults->node_down(u, s)) continue;
    events.push_back(SlotEvent{s, u, true});
  }
}

}  // namespace

SlotwiseResult run_repetition_slotwise(SlotCount num_slots,
                                       std::span<const NodeAction> actions,
                                       SlotAdversary& adversary, Rng& rng,
                                       const CcaModel& cca, FaultPlan* faults) {
  poll_cancellation(num_slots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  // Presample every node's activity.  Node action draws are independent of
  // jamming, so committing them up front leaves the adversary's adaptivity
  // intact: it still decides each slot knowing everything it could have
  // physically observed up to that slot.
  thread_local std::vector<SlotEvent> events;
  events.clear();
  double expected_rate = 0.0;
  for (const NodeAction& a : actions) {
    expected_rate += a.send_prob + a.listen_prob;
  }
  events.reserve(static_cast<std::size_t>(
                     expected_rate * static_cast<double>(num_slots)) +
                 16);
  for (NodeId u = 0; u < actions.size(); ++u) {
    generate_node_events(u, actions[u], num_slots, rng, events, faults);
  }
  std::sort(events.begin(), events.end());
  result.event_count = events.size();

  // History buffer, reused across repetitions.  When the adversary declares
  // a finite lookback window we keep only a bounded suffix, compacting
  // amortized-O(1); otherwise every elapsed slot is materialized (empty
  // slots as zero-sender records).
  const SlotCount window = adversary.history_window();
  // A window covering the whole phase is equivalent to unbounded (and never
  // needs compaction, so 2 * window below cannot overflow).
  const bool bounded =
      window != SlotAdversary::kUnboundedHistory && window < num_slots;
  thread_local std::vector<SlotActivity> history;
  history.clear();
  if (!bounded) history.reserve(num_slots);

  const auto history_view = [&]() -> std::span<const SlotActivity> {
    if (!bounded) return history;
    const std::size_t keep =
        std::min<std::size_t>(history.size(), static_cast<std::size_t>(window));
    return {history.data() + (history.size() - keep), keep};
  };

  std::size_t i = 0;  // cursor into events
  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const bool jammed = adversary.jam(slot, history_view());
    if (jammed) ++result.jammed_slots;

    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    std::size_t j = i;
    for (; j < events.size() && events[j].slot == slot && !events[j].is_listen;
         ++j) {
      ++sender_count;
      single_payload = actions[events[j].node].payload;
      if (faults != nullptr && faults->node_skewed(events[j].node)) {
        single_payload = Payload::kNoise;
      }
      ++result.rep.obs[events[j].node].sends;
    }
    for (; j < events.size() && events[j].slot == slot; ++j) {
      const NodeId u = events[j].node;
      NodeObservation& o = result.rep.obs[u];
      ++o.listens;
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }
    i = j;

    if (window > 0) {
      history.push_back(SlotActivity{slot, sender_count, jammed});
      if (bounded && history.size() >= 2 * static_cast<std::size_t>(window)) {
        history.erase(history.begin(),
                      history.end() - static_cast<std::ptrdiff_t>(window));
      }
    }
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

SlotwiseResult run_repetition_slotwise_dense(
    SlotCount num_slots, std::span<const NodeAction> actions,
    SlotAdversary& adversary, Rng& rng, const CcaModel& cca,
    FaultPlan* faults) {
  poll_cancellation(num_slots);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  if (faults != nullptr) {
    faults->begin_phase(static_cast<std::uint32_t>(actions.size()), num_slots);
  }

  SlotwiseResult result;
  result.rep.obs.resize(actions.size());

  std::vector<SlotActivity> history;
  history.reserve(num_slots);
  std::vector<NodeId> listeners;
  listeners.reserve(actions.size());

  for (SlotIndex slot = 0; slot < num_slots; ++slot) {
    const bool jammed = adversary.jam(slot, history);
    if (jammed) ++result.jammed_slots;

    std::uint32_t sender_count = 0;
    Payload single_payload = Payload::kNoise;
    listeners.clear();
    for (NodeId u = 0; u < actions.size(); ++u) {
      const NodeAction& a = actions[u];
      NodeObservation& o = result.rep.obs[u];
      if (faults != nullptr && faults->node_down(u, slot)) continue;
      if (rng.bernoulli(a.send_prob)) {
        ++o.sends;
        ++result.event_count;
        ++sender_count;
        single_payload = a.payload;
        if (faults != nullptr && faults->node_skewed(u)) {
          single_payload = Payload::kNoise;
        }
      } else if (rng.bernoulli(a.listen_prob)) {
        ++o.listens;
        ++result.event_count;
        listeners.push_back(u);
      }
    }

    for (NodeId u : listeners) {
      NodeObservation& o = result.rep.obs[u];
      Reception heard = resolve(sender_count, single_payload, jammed);
      if (!cca.perfect()) heard = cca.apply(heard, rng);
      if (faults != nullptr) {
        if (faults->node_skewed(u) && (heard == Reception::kMessage ||
                                       heard == Reception::kNack)) {
          heard = Reception::kNoise;
        }
        heard = faults->degrade(heard, slot, rng);
      }
      record(o, heard, slot);
    }

    history.push_back(SlotActivity{slot, sender_count, jammed});
  }

  for (auto& o : result.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return result;
}

}  // namespace rcb
