#include "rcb/sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {
namespace {

// Distinct stream salts so crash timelines, skew draws and eligibility
// hashes never alias even for small seeds.
constexpr std::uint64_t kCrashSalt = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kSkewSalt = 0xD1B54A32D192ED03ull;
constexpr std::uint64_t kEligibleSalt = 0x8BB84B93962EEFCDull;
constexpr std::uint64_t kBrownoutSalt = 0x2545F4914F6CDD1Dull;

// Toggle cap per node: beyond this the node freezes in its current state.
// At plausible churn rates (<= 1e-2 per slot) this covers hundreds of
// thousands of slots per node while bounding memory at ~32 KiB per node.
constexpr std::size_t kMaxToggles = 4096;

/// Deterministic per-node uniform in [0,1) from (seed, salt, node).
double node_hash01(std::uint64_t seed, std::uint64_t salt, NodeId u) {
  std::uint64_t s = seed ^ salt ^ (static_cast<std::uint64_t>(u) + 1) * kCrashSalt;
  const std::uint64_t x = splitmix64_next(s);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Geometric-ish waiting time (in slots, >= 1) for a per-slot event rate.
/// Returns kNoSlot when the event never fires.
SlotIndex waiting_slots(double rate, Rng& rng) {
  if (rate <= 0.0) return kNoSlot;
  if (rate >= 1.0) return 1;
  const double w = rng.exponential() / rate;
  if (!(w < 1e18)) return kNoSlot;  // beyond any simulated horizon
  return 1 + static_cast<SlotIndex>(w);
}

}  // namespace

bool FaultConfig::any_active() const {
  return crash_rate > 0.0 || loss_rate > 0.0 || corruption_rate > 0.0 ||
         clock_skew_rate > 0.0 ||
         (brownout_slot != kNoSlot && brownout_fraction > 0.0) ||
         cca_false_busy > 0.0 || cca_missed_detection > 0.0;
}

FaultPlan::FaultPlan(const FaultConfig& config)
    : config_(config), active_(config.any_active()) {
  RCB_REQUIRE(config.crash_rate >= 0.0 && config.crash_rate <= 1.0);
  RCB_REQUIRE(config.restart_rate >= 0.0 && config.restart_rate <= 1.0);
  RCB_REQUIRE(config.crash_fraction >= 0.0 && config.crash_fraction <= 1.0);
  RCB_REQUIRE(config.loss_rate >= 0.0 && config.loss_rate <= 1.0);
  RCB_REQUIRE(config.corruption_rate >= 0.0 && config.corruption_rate <= 1.0);
  RCB_REQUIRE(config.clock_skew_rate >= 0.0 && config.clock_skew_rate <= 1.0);
  RCB_REQUIRE(config.brownout_fraction >= 0.0 && config.brownout_fraction <= 1.0);
  RCB_REQUIRE(config.brownout_factor >= 0.0 && config.brownout_factor <= 1.0);
  RCB_REQUIRE(config.cca_false_busy >= 0.0 && config.cca_false_busy <= 1.0);
  RCB_REQUIRE(config.cca_missed_detection >= 0.0 &&
              config.cca_missed_detection <= 1.0);
}

void FaultPlan::reset() {
  origin_ = 0;
  phase_slots_ = 0;
  phase_index_ = 0;
  skewed_.clear();
  timelines_.clear();
}

void FaultPlan::begin_phase(std::uint32_t node_count, SlotCount num_slots) {
  if (!active_) return;
  origin_ += phase_slots_;
  phase_slots_ = num_slots;

  skewed_.assign(node_count, false);
  if (config_.clock_skew_rate > 0.0) {
    // One dedicated stream per phase keeps the draws independent of how
    // many receptions the engines process.
    Rng rng = Rng::stream(config_.seed ^ kSkewSalt, phase_index_);
    for (std::uint32_t u = 0; u < node_count; ++u) {
      skewed_[u] = rng.bernoulli(config_.clock_skew_rate);
    }
  }
  ++phase_index_;
}

void FaultPlan::init_timeline(NodeId u) {
  if (timelines_.size() <= u) timelines_.resize(u + 1);
  Timeline& tl = timelines_[u];
  if (tl.initialized) return;
  tl.initialized = true;
  tl.rng = Rng::stream(config_.seed ^ kCrashSalt, u);
  tl.eligible = config_.crash_rate > 0.0 &&
                node_hash01(config_.seed, kEligibleSalt, u) <
                    config_.crash_fraction;
  tl.exhausted = !tl.eligible;
}

void FaultPlan::extend_timeline(Timeline& tl, SlotIndex global_slot) {
  while (!tl.exhausted &&
         (tl.toggles.empty() || tl.toggles.back() <= global_slot)) {
    if (tl.toggles.size() >= kMaxToggles) {
      tl.exhausted = true;
      break;
    }
    const bool currently_up = tl.toggles.size() % 2 == 0;
    const double rate = currently_up ? config_.crash_rate : config_.restart_rate;
    const SlotIndex wait = waiting_slots(rate, tl.rng);
    if (wait == kNoSlot) {
      tl.exhausted = true;
      break;
    }
    const SlotIndex base = tl.toggles.empty() ? 0 : tl.toggles.back();
    if (base > kNoSlot - wait) {  // saturate instead of wrapping
      tl.exhausted = true;
      break;
    }
    tl.toggles.push_back(base + wait);
  }
}

bool FaultPlan::node_down_at(NodeId u, SlotIndex global_slot) {
  if (!active_ || config_.crash_rate <= 0.0) return false;
  init_timeline(u);
  Timeline& tl = timelines_[u];
  extend_timeline(tl, global_slot);
  const auto it =
      std::upper_bound(tl.toggles.begin(), tl.toggles.end(), global_slot);
  return (it - tl.toggles.begin()) % 2 == 1;
}

double FaultPlan::battery_factor(NodeId u, SlotIndex global_slot) const {
  if (!active_ || config_.brownout_slot == kNoSlot ||
      config_.brownout_fraction <= 0.0 || global_slot < config_.brownout_slot) {
    return 1.0;
  }
  return node_hash01(config_.seed, kBrownoutSalt, u) < config_.brownout_fraction
             ? config_.brownout_factor
             : 1.0;
}

double FaultPlan::cca_ramp(SlotIndex global_slot) const {
  if (config_.cca_ramp_slots == 0) return 1.0;
  if (global_slot >= config_.cca_ramp_slots) return 1.0;
  return static_cast<double>(global_slot) /
         static_cast<double>(config_.cca_ramp_slots);
}

Reception FaultPlan::degrade(Reception ideal, SlotIndex slot_in_phase,
                             Rng& rng) {
  if (!active_) return ideal;
  const SlotIndex t = origin_ + slot_in_phase;
  switch (ideal) {
    case Reception::kMessage:
    case Reception::kNack:
      if (config_.corruption_rate > 0.0 &&
          rng.bernoulli(config_.corruption_rate)) {
        return Reception::kNoise;
      }
      if (config_.loss_rate > 0.0 && rng.bernoulli(config_.loss_rate)) {
        return Reception::kClear;
      }
      return ideal;
    case Reception::kClear:
      if (config_.cca_false_busy > 0.0 &&
          rng.bernoulli(config_.cca_false_busy * cca_ramp(t))) {
        return Reception::kNoise;
      }
      return ideal;
    case Reception::kNoise:
      if (config_.cca_missed_detection > 0.0 &&
          rng.bernoulli(config_.cca_missed_detection * cca_ramp(t))) {
        return Reception::kClear;
      }
      return ideal;
  }
  return ideal;
}

}  // namespace rcb
