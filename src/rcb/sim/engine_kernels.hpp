// Hot inner kernels shared by the channel engines, with AVX2 variants.
//
// Every kernel here is dispatched on simd::active_mode() and the AVX2
// variants are bit-identical to the scalar ones (they produce the same
// bytes; the simulation's RNG stream is untouched).  The presample helper
// ties the geometric-skip block sampler to the packed event-key layout of
// EngineWorkspace, so both engines share one schedule-generation path.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/engine_workspace.hpp"
#include "rcb/sim/faults.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb::engine_kernels {

/// Number of leading keys (sorted ascending) strictly below `bound` —
/// event-group and sender/listener boundary resolution over packed keys.
std::size_t count_keys_below(const std::uint64_t* keys, std::size_t count,
                             std::uint64_t bound);

/// Writes `len` zero-sender history records with consecutive slots
/// [first_slot, first_slot + len) and one jam decision into `dst`.
void fill_history_records(SlotActivity* dst, SlotIndex first_slot,
                          SlotCount len, bool jammed);

/// Multi-channel variant: `len` zero-sender McSlotActivity records with
/// consecutive slots and one jam mask.
void fill_mc_history_records(McSlotActivity* dst, SlotIndex first_slot,
                             SlotCount len, std::uint64_t jam_mask);

/// Bounded-window history compaction shared by both slotwise engines:
/// append one record, and once the buffer holds twice the window, drop
/// everything but the trailing `window` records.  The 2x watermark keeps
/// the erase_prefix memmove amortized O(1) per push while history_view()
/// can always serve the trailing `window` records.
template <typename Record>
inline void push_history_compacted(ArenaVector<Record>& history,
                                   const Record& rec, SlotCount window,
                                   bool bounded) {
  history.push_back(rec);
  if (bounded && history.size() >= 2 * static_cast<std::size_t>(window)) {
    history.erase_prefix(history.size() - static_cast<std::size_t>(window));
  }
}

/// Presamples one node's send/listen events into ws.events as packed keys.
/// Listens colliding with the node's own sends are dropped (half-duplex);
/// a crashed node's events are dropped after sampling, so the Rng stream is
/// consumed identically with and without an active FaultPlan.  Draw-for-draw
/// identical to the pre-SoA per-node generators in both engines.
/// `channels` (optional) stamps each event with the node's hop-sequence
/// channel; null packs channel 0 everywhere — whether a slot is an event
/// slot is independent of the channel choice, so the Rng stream is also
/// identical with and without a channel plan.
inline void presample_node_events(NodeId u, const NodeAction& action,
                                  SlotCount num_slots, Rng& rng,
                                  EngineWorkspace& ws, FaultPlan* faults,
                                  detail::SkipBlockFn skip_block,
                                  const ChannelPlan* channels = nullptr) {
  auto& send_slots = ws.send_slots;
  send_slots.clear();
  for_each_bernoulli_slot(num_slots, action.send_prob, rng, skip_block,
                          [&](SlotIndex s) { send_slots.push_back(s); });
  for (SlotIndex s : send_slots) {
    if (faults != nullptr && faults->node_down(u, s)) continue;
    const std::uint32_t ch =
        channels != nullptr ? channels->channel_of(u, s) : 0;
    ws.events.push_back(event_key::pack(s, ch, false, u));
  }

  std::size_t si = 0;  // cursor into send_slots
  for_each_bernoulli_slot(
      num_slots, action.listen_prob, rng, skip_block, [&](SlotIndex s) {
        while (si < send_slots.size() && send_slots[si] < s) ++si;
        if (si < send_slots.size() && send_slots[si] == s) {
          return;  // busy sending
        }
        if (faults != nullptr && faults->node_down(u, s)) return;
        const std::uint32_t ch =
            channels != nullptr ? channels->channel_of(u, s) : 0;
        ws.events.push_back(event_key::pack(s, ch, true, u));
      });
}

}  // namespace rcb::engine_kernels
