// Energy accounting for nodes and the adversary.
//
// The resource-competitive model (paper section 1.1) charges one unit per
// slot spent sending or listening; sleeping is free.  The adversary is
// charged one unit per jammed slot.  These ledgers are the ground truth for
// every cost reported by the benches.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/common/types.hpp"

namespace rcb {

/// Per-node energy ledger.
struct NodeEnergy {
  Cost sends = 0;
  Cost listens = 0;

  Cost total() const { return sends + listens; }
};

/// Ledger for a population of nodes plus the adversary.
class EnergyLedger {
 public:
  explicit EnergyLedger(std::size_t num_nodes) : nodes_(num_nodes) {}

  void charge_send(NodeId u, Cost amount = 1) {
    RCB_REQUIRE(u < nodes_.size());
    nodes_[u].sends += amount;
  }

  void charge_listen(NodeId u, Cost amount = 1) {
    RCB_REQUIRE(u < nodes_.size());
    nodes_[u].listens += amount;
  }

  void charge_adversary(Cost amount) { adversary_ += amount; }

  const NodeEnergy& node(NodeId u) const {
    RCB_REQUIRE(u < nodes_.size());
    return nodes_[u];
  }

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Total adversary expenditure T.
  Cost adversary_cost() const { return adversary_; }

  /// max over good nodes of C(i) — the quantity bounded by the paper's
  /// cost function rho + tau.
  Cost max_node_cost() const;

  /// Sum of all node costs.
  Cost total_node_cost() const;

  /// Arithmetic mean node cost (0 if there are no nodes).
  double mean_node_cost() const;

 private:
  std::vector<NodeEnergy> nodes_;
  Cost adversary_ = 0;
};

}  // namespace rcb
