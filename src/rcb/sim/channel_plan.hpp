// Multi-channel slot model: which of the C channels each node occupies in
// each slot.
//
// The Chen–Zheng extension of the paper's broadcast problem (arXiv
// 2001.03936, arXiv 1904.06328) runs the protocol over C parallel channels:
// every slot, each node picks one channel to send or listen on, and the
// adversary splits its jamming budget across channels.  Node channel
// choices here are *deterministic within a phase*: a protocol draws a
// per-node hop sequence (start, stride) from the trial RNG before the
// phase, and the engines evaluate it pointwise.  Keeping the hop sequence
// out of the engines' RNG stream is what lets the event-driven and dense
// multi-channel engines stay exactly cross-checkable, and what keeps the
// C=1 code path draw-for-draw identical to the single-channel engines.
#pragma once

#include <cstdint>
#include <span>

#include "rcb/common/types.hpp"

namespace rcb {

/// Hard cap on the channel count: jam decisions and per-slot channel
/// occupancy travel as 64-bit masks (one bit per channel), and the packed
/// event keys reserve 6 channel bits.
inline constexpr std::uint32_t kMaxChannels = 64;

/// One node's cyclic hop sequence: channel(slot) = (start + slot * stride)
/// mod C.  stride 0 parks the node on a fixed channel.
struct ChannelHop {
  std::uint32_t start = 0;
  std::uint32_t stride = 0;
};

/// A phase's channel assignment: C channels plus one hop sequence per node.
/// An empty `hops` span (or C == 1) parks every node on channel 0 — the
/// single-channel degenerate case.
struct ChannelPlan {
  std::uint32_t num_channels = 1;
  /// One entry per node; may be empty when num_channels == 1.
  std::span<const ChannelHop> hops;

  std::uint32_t channel_of(NodeId u, SlotIndex slot) const {
    if (num_channels <= 1 || hops.empty()) return 0;
    const ChannelHop& h = hops[u];
    return static_cast<std::uint32_t>((h.start + slot * h.stride) %
                                      num_channels);
  }

  /// Bitmask with one bit per valid channel.
  std::uint64_t valid_mask() const {
    return num_channels >= 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << num_channels) - 1;
  }
};

}  // namespace rcb
