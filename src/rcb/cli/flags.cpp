#include "rcb/cli/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "rcb/common/contracts.hpp"

namespace rcb {

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::add_string(const std::string& name, std::string default_value,
                         std::string help) {
  RCB_REQUIRE(!flags_.count(name));
  Flag f;
  f.type = Type::kString;
  f.help = std::move(help);
  f.default_repr = default_value;
  f.string_value = std::move(default_value);
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void FlagSet::add_int(const std::string& name, std::int64_t default_value,
                      std::string help, std::int64_t min_value,
                      std::int64_t max_value) {
  RCB_REQUIRE(!flags_.count(name));
  RCB_REQUIRE(min_value <= default_value && default_value <= max_value);
  Flag f;
  f.type = Type::kInt;
  f.help = std::move(help);
  f.default_repr = std::to_string(default_value);
  f.int_value = default_value;
  f.int_min = min_value;
  f.int_max = max_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void FlagSet::add_double(const std::string& name, double default_value,
                         std::string help) {
  RCB_REQUIRE(!flags_.count(name));
  Flag f;
  f.type = Type::kDouble;
  f.help = std::move(help);
  std::ostringstream os;
  os << default_value;
  f.default_repr = os.str();
  f.double_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void FlagSet::add_bool(const std::string& name, bool default_value,
                       std::string help) {
  RCB_REQUIRE(!flags_.count(name));
  Flag f;
  f.type = Type::kBool;
  f.help = std::move(help);
  f.default_repr = default_value ? "true" : "false";
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

bool FlagSet::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    return false;
  }
  Flag& f = it->second;
  errno = 0;
  char* end = nullptr;
  switch (f.type) {
    case Type::kString:
      f.string_value = value;
      return true;
    case Type::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "--%s expects an integer, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      if (v < f.int_min || v > f.int_max) {
        if (f.int_max == INT64_MAX) {
          std::fprintf(stderr, "--%s must be >= %lld, got '%s'\n",
                       name.c_str(), static_cast<long long>(f.int_min),
                       value.c_str());
        } else {
          std::fprintf(stderr, "--%s must be in [%lld, %lld], got '%s'\n",
                       name.c_str(), static_cast<long long>(f.int_min),
                       static_cast<long long>(f.int_max), value.c_str());
        }
        return false;
      }
      f.int_value = v;
      return true;
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "--%s expects a number, got '%s'\n", name.c_str(),
                     value.c_str());
        return false;
      }
      f.double_value = v;
      return true;
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        f.bool_value = true;
      } else if (value == "false" || value == "0") {
        f.bool_value = false;
      } else {
        std::fprintf(stderr, "--%s expects true/false, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      return true;
    }
  }
  return false;
}

bool FlagSet::set(const std::string& name, const std::string& value) {
  return set_value(name, value);
}

bool FlagSet::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      auto it = flags_.find(arg);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag sets a boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "--%s is missing a value\n", arg.c_str());
        return false;
      }
    }
    if (!set_value(arg, value)) return false;
  }
  return true;
}

const FlagSet::Flag& FlagSet::find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  RCB_REQUIRE(it != flags_.end());
  RCB_REQUIRE(it->second.type == type);
  return it->second;
}

const std::string& FlagSet::get_string(const std::string& name) const {
  return find(name, Type::kString).string_value;
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  return find(name, Type::kInt).int_value;
}

double FlagSet::get_double(const std::string& name) const {
  return find(name, Type::kDouble).double_value;
}

bool FlagSet::get_bool(const std::string& name) const {
  return find(name, Type::kBool).bool_value;
}

std::string FlagSet::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << "  (default: " << f.default_repr << ")\n      "
       << f.help << '\n';
  }
  return os.str();
}

}  // namespace rcb
