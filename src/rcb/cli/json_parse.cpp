#include "rcb/cli/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "rcb/common/contracts.hpp"

namespace rcb {

JsonValue::JsonValue(JsonArray a)
    : type_(Type::kArray),
      array_(std::make_shared<const JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::kObject),
      object_(std::make_shared<const JsonObject>(std::move(o))) {}

bool JsonValue::as_bool() const {
  RCB_REQUIRE(is_bool());
  return bool_;
}

double JsonValue::as_number() const {
  RCB_REQUIRE(is_number());
  return number_;
}

const std::string& JsonValue::as_string() const {
  RCB_REQUIRE(is_string());
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  RCB_REQUIRE(is_array());
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  RCB_REQUIRE(is_object());
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, /*depth=*/0)) {
      result.error = error_;
      result.error_offset = pos_;
      return result;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document";
      result.error_offset = pos_;
      return result;
    }
    result.ok = true;
    result.value = std::move(value);
    return result;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (at_end() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) return fail("invalid literal");
        out = JsonValue();
        return true;
      case 't':
        if (!consume_literal("true")) return fail("invalid literal");
        out = JsonValue(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("invalid literal");
        out = JsonValue(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs unsupported — config files
          // have no use for astral-plane characters; reject cleanly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate pairs unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits required after decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits required in exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return fail("number out of range");
    }
    out = JsonValue(value);
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    consume('[');
    JsonArray items;
    skip_whitespace();
    if (consume(']')) {
      out = JsonValue(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_whitespace();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
    out = JsonValue(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    consume('{');
    JsonObject members;
    skip_whitespace();
    if (consume('}')) {
      out = JsonValue(std::move(members));
      return true;
    }
    for (;;) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      // Reject duplicates: first-wins or last-wins semantics would let two
      // documents that look different parse identically, which is poison
      // for repro records.
      if (!members.emplace(std::move(key), std::move(value)).second) {
        return fail("duplicate object key");
      }
      skip_whitespace();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
    out = JsonValue(std::move(members));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace rcb
