// Minimal command-line flag parsing for the tools and examples.
//
// Supports --name=value and --name value forms, typed defaults, --help
// generation, and strict rejection of unknown flags (a typo silently
// falling back to a default would corrupt an experiment).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcb {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  /// `min_value`/`max_value` bound accepted inputs (inclusive); an
  /// out-of-range value is rejected at parse time with a one-line error
  /// naming the bound, so e.g. --threads=-4 fails loudly instead of
  /// wrapping through an unsigned cast deep inside the tool.
  void add_int(const std::string& name, std::int64_t default_value,
               std::string help, std::int64_t min_value = INT64_MIN,
               std::int64_t max_value = INT64_MAX);
  void add_double(const std::string& name, double default_value,
                  std::string help);
  void add_bool(const std::string& name, bool default_value, std::string help);

  /// Parses argv.  Returns false (after printing a message) on --help or on
  /// any malformed/unknown flag; the caller should exit.
  bool parse(int argc, const char* const* argv);

  /// Sets one flag from its textual representation (same validation as
  /// parse); used for config-file support.  Returns false on unknown flag
  /// or malformed value.
  bool set(const std::string& name, const std::string& value);

  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Renders the --help text.
  std::string help_text() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string help;
    std::string default_repr;
    std::string string_value;
    std::int64_t int_value = 0;
    std::int64_t int_min = INT64_MIN;
    std::int64_t int_max = INT64_MAX;
    double double_value = 0.0;
    bool bool_value = false;
  };

  const Flag& find(const std::string& name, Type type) const;
  bool set_value(const std::string& name, const std::string& value);

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace rcb
