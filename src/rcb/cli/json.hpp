// Minimal streaming JSON writer for tool output.
//
// Writes syntactically valid JSON with string escaping and nesting checks;
// no DOM, no parsing.  Intended for piping rcb_sim results into external
// analysis (jq, pandas, ...).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rcb {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value or
  /// begin_object/begin_array.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// True when every container has been closed.
  bool complete() const { return stack_.empty() && wrote_top_level_; }

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };

  void pre_value();
  void write_escaped(const std::string& s);

  std::ostream* os_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_in_ctx_;
  bool pending_key_ = false;
  bool wrote_top_level_ = false;
};

}  // namespace rcb
