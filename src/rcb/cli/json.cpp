#include "rcb/cli/json.hpp"

#include <cmath>
#include <cstdio>

#include "rcb/common/contracts.hpp"

namespace rcb {

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    RCB_REQUIRE(!wrote_top_level_);  // only one top-level value
    wrote_top_level_ = true;
    return;
  }
  if (stack_.back() == Ctx::kObject) {
    RCB_REQUIRE(pending_key_);  // object values need a key
    pending_key_ = false;
    return;
  }
  // Array context: comma-separate siblings.
  if (!first_in_ctx_.back()) *os_ << ',';
  first_in_ctx_.back() = false;
}

void JsonWriter::write_escaped(const std::string& s) {
  *os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *os_ << "\\\"";
        break;
      case '\\':
        *os_ << "\\\\";
        break;
      case '\n':
        *os_ << "\\n";
        break;
      case '\t':
        *os_ << "\\t";
        break;
      case '\r':
        *os_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *os_ << buf;
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  *os_ << '{';
  stack_.push_back(Ctx::kObject);
  first_in_ctx_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RCB_REQUIRE(!stack_.empty() && stack_.back() == Ctx::kObject);
  RCB_REQUIRE(!pending_key_);
  *os_ << '}';
  stack_.pop_back();
  first_in_ctx_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  *os_ << '[';
  stack_.push_back(Ctx::kArray);
  first_in_ctx_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RCB_REQUIRE(!stack_.empty() && stack_.back() == Ctx::kArray);
  *os_ << ']';
  stack_.pop_back();
  first_in_ctx_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  RCB_REQUIRE(!stack_.empty() && stack_.back() == Ctx::kObject);
  RCB_REQUIRE(!pending_key_);
  if (!first_in_ctx_.back()) *os_ << ',';
  first_in_ctx_.back() = false;
  write_escaped(k);
  *os_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    *os_ << buf;
  } else {
    *os_ << "null";  // JSON has no inf/nan
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace rcb
