// Minimal recursive-descent JSON parser (RFC 8259 subset) for tool config
// files.  Paired with the writer in json.hpp; round-trips everything the
// writer emits.  No exceptions: parse() returns an error description with
// position on malformed input.  Hardened for adversarial input (crash-repro
// records travel through logs): nesting is depth-capped, duplicate object
// keys are rejected, and no input can make the parser read out of bounds —
// fuzz_test.cpp exercises random, truncated and mutated documents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rcb {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A parsed JSON value.  Numbers are stored as double (as in JSON itself).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a);
  explicit JsonValue(JsonObject o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; precondition: matching type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<const JsonArray> array_;
  std::shared_ptr<const JsonObject> object_;
};

/// Result of parsing: either a value or an error with byte offset.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t error_offset = 0;
};

/// Parses a complete JSON document (leading/trailing whitespace allowed;
/// trailing garbage is an error).
JsonParseResult json_parse(std::string_view text);

}  // namespace rcb
