// Fundamental value types shared across the rcb library.
//
// The simulator models a time-slotted, single-hop, single-channel wireless
// network (paper section 1.2).  Everything is indexed in discrete slots and
// all costs are unit-per-slot energy charges.
#pragma once

#include <cstdint>
#include <limits>

namespace rcb {

/// Index of a time slot within one phase/repetition (0-based).
using SlotIndex = std::uint64_t;

/// Count of time slots.
using SlotCount = std::uint64_t;

/// Identity of a node. The broadcast sender is conventionally node 0.
using NodeId = std::uint32_t;

/// Energy cost in slot-units (1 per slot spent sending or listening).
using Cost = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel slot index meaning "never happened".
inline constexpr SlotIndex kNoSlot = std::numeric_limits<SlotIndex>::max();

/// What a transmitting radio puts on the channel in a slot.
enum class Payload : std::uint8_t {
  kMessage,  ///< the authenticated broadcast message m
  kNack,     ///< negative acknowledgement (1-to-1 protocol, Fig. 1)
  kNoise,    ///< deliberate noise (uninformed senders in Fig. 2)
};

/// What a listening radio hears in a slot (paper section 1.2: a slot is
/// *clear* iff it contains neither noise nor any message; two or more
/// concurrent transmissions collide into noise; jamming is heard as noise
/// and is indistinguishable from collision noise).
enum class Reception : std::uint8_t {
  kClear,    ///< silence: no sender, no jamming
  kMessage,  ///< exactly one sender, payload kMessage, no jamming
  kNack,     ///< exactly one sender, payload kNack, no jamming
  kNoise,    ///< jammed, or collision, or a single noise-payload sender
};

}  // namespace rcb
