// Lightweight contract checking with machine-readable failure records.
//
// RCB_REQUIRE is kept on in all build types: the simulator is a research
// instrument, and a silently-violated precondition invalidates experiment
// output, which is worse than the branch cost.  Hot inner loops use
// RCB_ASSERT, which compiles out when NDEBUG is defined.
//
// Crash repro: a contract failure emits a one-line JSON record
// ("RCB_REPRO {...}") to stderr before aborting.  If the failing thread has
// a ReproScope installed (the Monte-Carlo runners install one per trial),
// the record carries the master seed, trial index, and scenario JSON needed
// to re-execute the exact failing trial bit-identically — see
// runtime/scenario.hpp and tools/replay.  Tests can intercept the record
// (and avoid the abort) with set_contract_failure_handler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rcb {

/// Ambient description of the experiment the current thread is executing,
/// attached to contract-failure repro records.
struct ReproContext {
  std::uint64_t master_seed = 0;
  std::uint64_t trial = 0;
  /// JSON text describing the scenario (see runtime/scenario.hpp), or
  /// empty when unknown.  Embedded verbatim into the repro record.
  std::string scenario_json;
};

/// RAII installer for the thread-local ReproContext; nests.
class ReproScope {
 public:
  ReproScope(std::uint64_t master_seed, std::uint64_t trial,
             std::string scenario_json);
  ~ReproScope();
  ReproScope(const ReproScope&) = delete;
  ReproScope& operator=(const ReproScope&) = delete;

 private:
  const ReproContext* previous_;
  ReproContext context_;
};

/// Innermost installed context for this thread, or nullptr.
const ReproContext* current_repro_context();

/// Formats a one-line machine-readable repro record ("{...}", without the
/// RCB_REPRO prefix) from an explicit context.  `ctx` may be null (the
/// failure happened outside any trial).  Used by the contract-failure path
/// and by runners that report non-contract events (watchdog timeouts,
/// escaped exceptions) in the same replayable format.  When the context
/// carries scenario JSON, the record also embeds its FNV-1a digest as
/// "scenario_digest", so tools can detect a tampered or stale scenario.
std::string format_repro_record(std::string_view kind, std::string_view expr,
                                std::string_view file, int line,
                                const ReproContext* ctx);

/// Invoked with the repro record before the default stderr+abort path.
/// A handler may throw (test capture) or terminate; if it returns, the
/// default path runs.  Process-global; returns the previous handler.
using ContractFailureHandler = void (*)(std::string_view record_json);
ContractFailureHandler set_contract_failure_handler(ContractFailureHandler h);

namespace detail {

[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, int line);

}  // namespace detail
}  // namespace rcb

#define RCB_REQUIRE(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::rcb::detail::contract_failure("precondition", #expr, __FILE__,        \
                                      __LINE__);                              \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define RCB_ASSERT(expr) ((void)0)
#else
#define RCB_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::rcb::detail::contract_failure("assertion", #expr, __FILE__,           \
                                      __LINE__);                              \
    }                                                                         \
  } while (false)
#endif
