// Lightweight contract checking.
//
// RCB_REQUIRE is kept on in all build types: the simulator is a research
// instrument, and a silently-violated precondition invalidates experiment
// output, which is worse than the branch cost.  Hot inner loops use
// RCB_ASSERT, which compiles out when NDEBUG is defined.
#pragma once

#include <string_view>

namespace rcb::detail {

[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, int line);

}  // namespace rcb::detail

#define RCB_REQUIRE(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::rcb::detail::contract_failure("precondition", #expr, __FILE__,        \
                                      __LINE__);                              \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define RCB_ASSERT(expr) ((void)0)
#else
#define RCB_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::rcb::detail::contract_failure("assertion", #expr, __FILE__,           \
                                      __LINE__);                              \
    }                                                                         \
  } while (false)
#endif
