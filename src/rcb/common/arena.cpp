#include "rcb/common/arena.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define RCB_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RCB_ARENA_ASAN 1
#endif
#endif

#ifdef RCB_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define RCB_ARENA_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define RCB_ARENA_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define RCB_ARENA_POISON(ptr, size) ((void)0)
#define RCB_ARENA_UNPOISON(ptr, size) ((void)0)
#endif

namespace rcb {
namespace {

constexpr std::size_t kMinChunkBytes = 1024;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes)
    : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes ? kMinChunkBytes
                                                           : first_chunk_bytes) {
  head_ = current_ = new_chunk(0);
}

Arena::~Arena() {
  Chunk* c = head_;
  while (c != nullptr) {
    Chunk* next = c->next;
    RCB_ARENA_UNPOISON(c->base, c->size);
    ::operator delete(c->base, std::align_val_t{kSimdAlignment});
    delete c;
    c = next;
  }
}

Arena::Chunk* Arena::new_chunk(std::size_t min_bytes) {
  std::size_t size = next_chunk_bytes_;
  if (size < min_bytes) size = round_up(min_bytes, kSimdAlignment);
  next_chunk_bytes_ = size * 2;
  auto* c = new Chunk;
  c->base = static_cast<std::byte*>(
      ::operator new(size, std::align_val_t{kSimdAlignment}));
  c->size = size;
  RCB_ARENA_POISON(c->base, c->size);
  ++num_chunks_;
  return c;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  RCB_ASSERT(align != 0 && (align & (align - 1)) == 0 &&
             align <= kSimdAlignment);
  // Rounding the *size* keeps every bump cursor align-aligned (chunk bases
  // are kSimdAlignment-aligned), and keeps distinct allocations in distinct
  // 8-byte ASan shadow granules.
  const std::size_t need = round_up(bytes == 0 ? 1 : bytes, align);
  if (current_->size - offset_ < need) {
    if (current_->next == nullptr ||
        current_->next->size < need) {  // skip-over only when it fits
      Chunk* fresh = new_chunk(need);
      fresh->next = current_->next;
      current_->next = fresh;
    }
    current_ = current_->next;
    offset_ = 0;
  }
  std::byte* p = current_->base + offset_;
  offset_ += need;
  bytes_used_ += need;
  RCB_ARENA_UNPOISON(p, need);
  return p;
}

void Arena::reset() {
  for (Chunk* c = head_; c != nullptr; c = c->next) {
    RCB_ARENA_POISON(c->base, c->size);
  }
  current_ = head_;
  offset_ = 0;
  bytes_used_ = 0;
}

}  // namespace rcb
