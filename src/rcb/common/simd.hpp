// Runtime SIMD dispatch for the engine hot paths.
//
// Policy: every vectorized kernel in the library (geometric-skip sampling,
// slot-group boundary scans, history materialization) has a scalar
// implementation that is the semantic reference, and an AVX2 implementation
// that is bit-identical to it — same outputs, same RNG stream consumption —
// so simulation digests never depend on the host's ISA.  The wide path is
// therefore purely a throughput knob:
//
//   * compiled in whenever the compiler supports per-function target
//     attributes on x86-64 (GCC/Clang), independent of -march flags;
//   * selected at runtime only when the CPU reports AVX2+FMA;
//   * enabled by default only in RCB_NATIVE builds (the `perf` preset).
//     Portable builds default to scalar; set RCB_SIMD=avx2 / RCB_SIMD=scalar
//     in the environment to override either default (tests use the
//     programmatic override to compare both paths in one process).
#pragma once

namespace rcb::simd {

enum class Mode {
  kScalar,  ///< reference implementations only
  kAvx2,    ///< AVX2+FMA kernels where available (bit-identical to scalar)
};

/// True when this binary contains AVX2 kernels and the CPU can run them.
bool avx2_available();

/// The mode kernels dispatch on: the build/env default, unless overridden.
Mode active_mode();

/// Programmatic override (tests compare scalar vs AVX2 in one process).
/// kAvx2 requires avx2_available().  Returns the previous override state.
void set_mode(Mode mode);

/// Restores the build/env default resolution.
void clear_mode_override();

}  // namespace rcb::simd
