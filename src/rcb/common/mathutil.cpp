#include "rcb/common/mathutil.hpp"

namespace rcb {

double ln_inverse(double eps) {
  RCB_REQUIRE(eps > 0.0 && eps < 1.0);
  return std::log(1.0 / eps);
}

}  // namespace rcb
