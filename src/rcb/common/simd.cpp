#include "rcb/common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "rcb/common/contracts.hpp"

namespace rcb::simd {
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RCB_SIMD_HAS_AVX2_KERNELS 1
#endif

bool detect_avx2() {
#ifdef RCB_SIMD_HAS_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Mode resolve_default() {
  if (!avx2_available()) return Mode::kScalar;
  if (const char* env = std::getenv("RCB_SIMD")) {
    if (std::strcmp(env, "avx2") == 0) return Mode::kAvx2;
    if (std::strcmp(env, "scalar") == 0) return Mode::kScalar;
  }
#ifdef RCB_NATIVE_BUILD
  return Mode::kAvx2;
#else
  return Mode::kScalar;
#endif
}

// 0 = no override, 1 = scalar, 2 = avx2.  Relaxed is fine: tests set the
// override before spawning engine work, and a racy read only ever selects
// one of two bit-identical implementations.
std::atomic<int> g_override{0};

}  // namespace

bool avx2_available() {
  static const bool available = detect_avx2();
  return available;
}

Mode active_mode() {
  switch (g_override.load(std::memory_order_relaxed)) {
    case 1:
      return Mode::kScalar;
    case 2:
      return Mode::kAvx2;
    default: {
      static const Mode resolved = resolve_default();
      return resolved;
    }
  }
}

void set_mode(Mode mode) {
  // kAvx2 may only be forced on a host that can actually run the kernels.
  if (mode == Mode::kAvx2) RCB_REQUIRE(avx2_available());
  g_override.store(mode == Mode::kAvx2 ? 2 : 1, std::memory_order_relaxed);
}

void clear_mode_override() {
  g_override.store(0, std::memory_order_relaxed);
}

}  // namespace rcb::simd
