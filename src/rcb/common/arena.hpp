// Bump arena for per-trial engine scratch state.
//
// The channel engines need a handful of growable scratch arrays per phase
// (presampled event schedules, adversary history, listener lists).  Backing
// them with individual heap vectors means per-trial malloc churn under the
// work-stealing scheduler and no control over alignment.  An Arena instead
// owns a chain of large chunks and hands out bump-pointer allocations:
//
//   * every allocation is aligned to kSimdAlignment (64 B) by default, so
//     any array is safe for aligned AVX2/AVX-512 loads and never straddles
//     a cache line at its head;
//   * reset() rewinds to the first chunk without releasing memory.  A reset
//     arena replays the exact same addresses for the same allocation
//     sequence — a determinism aid when diffing two runs of one trial;
//   * under AddressSanitizer the unused tail of every chunk is poisoned, so
//     use-after-reset and out-of-bounds reads into arena slack are caught
//     like ordinary heap bugs.
//
// ArenaVector<T> is the growable view the engines use: push_back/resize
// semantics over arena storage for trivially copyable element types.
// Growth allocates a fresh doubled block from the arena and memcpys; the
// abandoned block is reclaimed at the next reset().  Arenas and their
// vectors are single-threaded by design — each engine thread owns one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>

#include "rcb/common/contracts.hpp"

namespace rcb {

class Arena {
 public:
  /// Default allocation alignment: one cache line, enough for any SIMD
  /// vector width we dispatch to (AVX2 needs 32, AVX-512 would need 64).
  static constexpr std::size_t kSimdAlignment = 64;

  explicit Arena(std::size_t first_chunk_bytes = std::size_t{1} << 16);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two <=
  /// kSimdAlignment; chunk bases are only kSimdAlignment-aligned).  Never
  /// returns null: grows by appending a doubled chunk when the current one
  /// is exhausted.  `bytes == 0` yields a distinct, valid, unusable pointer.
  void* allocate(std::size_t bytes, std::size_t align = kSimdAlignment);

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena storage is never destructed");
    static_assert(alignof(T) <= kSimdAlignment);
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Rewinds to the start of the first chunk.  Chunks are retained, so an
  /// identical allocation sequence afterwards returns identical addresses.
  /// Under ASan the entire arena is re-poisoned.
  void reset();

  /// Bytes handed out since construction or the last reset() (including
  /// alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }

  /// Number of chunks currently owned (growth observability for tests).
  std::size_t chunk_count() const { return num_chunks_; }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;
    Chunk* next = nullptr;
  };

  Chunk* new_chunk(std::size_t min_bytes);

  Chunk* head_ = nullptr;     ///< first chunk in the chain
  Chunk* current_ = nullptr;  ///< chunk allocations come from
  std::size_t offset_ = 0;    ///< bump cursor within current_
  std::size_t bytes_used_ = 0;
  std::size_t num_chunks_ = 0;
  std::size_t next_chunk_bytes_;
};

/// Growable array over Arena storage for trivially copyable element types.
/// clear() keeps capacity (like std::vector); detach() drops the storage so
/// the next use re-allocates from a freshly reset arena.
template <typename T>
class ArenaVector {
 public:
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::span<const T> view() const { return {data_, size_}; }

  void clear() { size_ = 0; }

  /// Releases the storage reference (the memory itself is reclaimed by the
  /// owning arena's reset()).  Call between trials, after Arena::reset().
  void detach() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = v;
  }

  /// Appends `n` copies of `v` (bulk fill for history materialization).
  void append_fill(std::size_t n, const T& v) {
    reserve(size_ + n);
    for (std::size_t i = 0; i < n; ++i) data_[size_ + i] = v;
    size_ += n;
  }

  /// Appends `n` uninitialized elements and returns a pointer to the first
  /// (bulk-write target for the history fill kernels).
  T* append_uninitialized(std::size_t n) {
    reserve(size_ + n);
    T* p = data_ + size_;
    size_ += n;
    return p;
  }

  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  /// Drops the first `n` elements, shifting the rest down (history window
  /// compaction).
  void erase_prefix(std::size_t n) {
    RCB_ASSERT(n <= size_);
    std::memmove(data_, data_ + n, (size_ - n) * sizeof(T));
    size_ -= n;
  }

 private:
  void grow(std::size_t min_capacity) {
    std::size_t cap = capacity_ == 0 ? 8 : capacity_ * 2;
    if (cap < min_capacity) cap = min_capacity;
    T* fresh = arena_->allocate_array<T>(cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace rcb
