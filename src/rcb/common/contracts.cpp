#include "rcb/common/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "rcb/common/mathutil.hpp"

namespace rcb {
namespace {

thread_local const ReproContext* t_repro_context = nullptr;
std::atomic<ContractFailureHandler> g_handler{nullptr};

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string format_repro_record(std::string_view kind, std::string_view expr,
                                std::string_view file, int line,
                                const ReproContext* ctx) {
  std::string r = "{\"rcb_repro\":1,\"kind\":\"";
  append_escaped(r, kind);
  r += "\",\"expr\":\"";
  append_escaped(r, expr);
  r += "\",\"file\":\"";
  append_escaped(r, file);
  r += "\",\"line\":" + std::to_string(line);
  if (ctx != nullptr) {
    r += ",\"master_seed\":" + std::to_string(ctx->master_seed);
    r += ",\"trial\":" + std::to_string(ctx->trial);
    if (!ctx->scenario_json.empty()) {
      r += ",\"scenario_digest\":\"" + to_hex16(fnv1a64(ctx->scenario_json)) +
           "\"";
    }
    r += ",\"scenario\":";
    r += ctx->scenario_json.empty() ? "null" : ctx->scenario_json;
  }
  r += "}";
  return r;
}

ReproScope::ReproScope(std::uint64_t master_seed, std::uint64_t trial,
                       std::string scenario_json)
    : previous_(t_repro_context) {
  context_.master_seed = master_seed;
  context_.trial = trial;
  context_.scenario_json = std::move(scenario_json);
  t_repro_context = &context_;
}

ReproScope::~ReproScope() { t_repro_context = previous_; }

const ReproContext* current_repro_context() { return t_repro_context; }

ContractFailureHandler set_contract_failure_handler(ContractFailureHandler h) {
  return g_handler.exchange(h);
}

namespace detail {

void contract_failure(std::string_view kind, std::string_view expr,
                      std::string_view file, int line) {
  const std::string record =
      format_repro_record(kind, expr, file, line, t_repro_context);
  if (ContractFailureHandler h = g_handler.load()) {
    h(record);  // may throw or terminate; falling through aborts below
  }
  std::fprintf(stderr, "rcb: %.*s failed: %.*s at %.*s:%d\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  std::fprintf(stderr, "RCB_REPRO %s\n", record.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace rcb
