#include "rcb/common/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace rcb::detail {

void contract_failure(std::string_view kind, std::string_view expr,
                      std::string_view file, int line) {
  std::fprintf(stderr, "rcb: %.*s failed: %.*s at %.*s:%d\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  std::abort();
}

}  // namespace rcb::detail
