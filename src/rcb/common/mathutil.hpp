// Small math helpers used throughout the protocols and analysis code.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "rcb/common/contracts.hpp"

namespace rcb {

/// The golden ratio phi = (1 + sqrt 5)/2; Theorem 5's exponent is phi - 1.
inline constexpr double kGoldenRatio = 1.6180339887498948482;

/// floor(log2(x)) for x >= 1.
inline std::uint32_t floor_log2(std::uint64_t x) {
  RCB_REQUIRE(x >= 1);
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
inline std::uint32_t ceil_log2(std::uint64_t x) {
  RCB_REQUIRE(x >= 1);
  const std::uint32_t f = floor_log2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

/// 2^i as a 64-bit count; i must be < 64.
inline std::uint64_t pow2(std::uint32_t i) {
  RCB_REQUIRE(i < 64);
  return std::uint64_t{1} << i;
}

/// Clamp a computed probability into [0, 1].  The paper's per-slot
/// probabilities (e.g. S_u * d * i^3 / 2^i) exceed 1 in early epochs for
/// simulation-scale parameters; clamping corresponds to the node simply
/// acting every slot.
inline double clamp_probability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// Saturating double->uint64 conversion for slot counts.
inline std::uint64_t to_slot_count(double x) {
  if (x <= 0.0) return 0;
  if (x >= 1.8e19) return UINT64_MAX;
  return static_cast<std::uint64_t>(x);
}

/// FNV-1a 64-bit over a byte string.  Used to fingerprint scenario JSON
/// (crash-repro records, checkpoint manifests) and to frame checkpoint
/// journal records; any change to the hashed text changes the digest.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Fixed-width lowercase hex encoding of a u64 (16 chars, zero-padded).
/// Digests travel through JSON as hex strings because JSON numbers are
/// doubles and lose u64 precision above 2^53.
inline std::string to_hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Parses a hex string (1..16 digits, as produced by to_hex16) into a u64.
/// Returns false on empty, overlong, or non-hex input.
inline bool parse_hex_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

/// Natural-log helper with a guard for the eps parameters used by Fig. 1.
double ln_inverse(double eps);

}  // namespace rcb
