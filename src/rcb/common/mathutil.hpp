// Small math helpers used throughout the protocols and analysis code.
#pragma once

#include <cmath>
#include <cstdint>

#include "rcb/common/contracts.hpp"

namespace rcb {

/// The golden ratio phi = (1 + sqrt 5)/2; Theorem 5's exponent is phi - 1.
inline constexpr double kGoldenRatio = 1.6180339887498948482;

/// floor(log2(x)) for x >= 1.
inline std::uint32_t floor_log2(std::uint64_t x) {
  RCB_REQUIRE(x >= 1);
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
inline std::uint32_t ceil_log2(std::uint64_t x) {
  RCB_REQUIRE(x >= 1);
  const std::uint32_t f = floor_log2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

/// 2^i as a 64-bit count; i must be < 64.
inline std::uint64_t pow2(std::uint32_t i) {
  RCB_REQUIRE(i < 64);
  return std::uint64_t{1} << i;
}

/// Clamp a computed probability into [0, 1].  The paper's per-slot
/// probabilities (e.g. S_u * d * i^3 / 2^i) exceed 1 in early epochs for
/// simulation-scale parameters; clamping corresponds to the node simply
/// acting every slot.
inline double clamp_probability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// Saturating double->uint64 conversion for slot counts.
inline std::uint64_t to_slot_count(double x) {
  if (x <= 0.0) return 0;
  if (x >= 1.8e19) return UINT64_MAX;
  return static_cast<std::uint64_t>(x);
}

/// Natural-log helper with a guard for the eps parameters used by Fig. 1.
double ln_inverse(double eps);

}  // namespace rcb
