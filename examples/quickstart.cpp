// Quickstart: the two protocols of the paper in a dozen lines each.
//
//   $ ./quickstart [seed]
//
// Runs (1) the Fig. 1 1-to-1 protocol against a budgeted jammer and (2) the
// Fig. 2 1-to-n broadcast with 32 nodes, printing what everything cost.
#include <cstdlib>
#include <iostream>

#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1-to-1: Alice sends m to Bob while a jammer spends a 4096-slot
  // budget blocking both directions. ---------------------------------------
  {
    const rcb::OneToOneParams params = rcb::OneToOneParams::sim(/*eps=*/0.01);
    rcb::FullDuelBlocker jammer(rcb::Budget(4096), /*q=*/0.6);
    rcb::Rng rng(seed);
    const rcb::OneToOneResult r = rcb::run_one_to_one(params, jammer, rng);

    std::cout << "1-to-1 BROADCAST (Fig. 1, eps = 0.01)\n"
              << "  delivered:       " << (r.delivered ? "yes" : "no") << '\n'
              << "  Alice cost:      " << r.alice_cost << " slot-units\n"
              << "  Bob cost:        " << r.bob_cost << " slot-units\n"
              << "  adversary spent: " << r.adversary_cost << " (T)\n"
              << "  latency:         " << r.latency << " slots\n\n";
  }

  // --- 1-to-n: one sender, 32 receivers, a half-blocking jammer. ----------
  {
    const rcb::BroadcastNParams params = rcb::BroadcastNParams::sim();
    rcb::SuffixBlockerAdversary jammer(rcb::Budget(1 << 16), /*q=*/0.5);
    rcb::Rng rng(seed + 1);
    const rcb::BroadcastNResult r =
        rcb::run_broadcast_n(/*n=*/32, params, jammer, rng);

    std::cout << "1-to-n BROADCAST (Fig. 2, n = 32)\n"
              << "  informed:        " << r.informed_count << "/" << r.n
              << '\n'
              << "  mean node cost:  " << r.mean_cost << " slot-units\n"
              << "  max node cost:   " << r.max_cost << " slot-units\n"
              << "  adversary spent: " << r.adversary_cost << " (T)\n"
              << "  latency:         " << r.latency << " slots (epochs "
              << r.final_epoch << ")\n";
    std::cout << "  -> per-node cost is ~sqrt(T/n) * polylog: the bigger the"
                 " fleet,\n     the cheaper the defence per node.\n";
  }
  return 0;
}
