// Adversary lab: watch an execution epoch by epoch.
//
//   $ ./adversary_lab [n] [q] [seed]
//
// Steps one Fig. 2 broadcast under a q-blocking jammer with the library's
// BroadcastNEngine and prints a per-epoch digest (status counts, S_u
// spread, energy), followed by a channel-activity strip chart for one
// repetition, built from the Trace facility.  Useful for building intuition
// about why hearing *silence* is what drives termination.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/protocols/broadcast_engine.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/stats/table.hpp"

namespace {

void narrated_run(std::uint32_t n, double q, std::uint64_t seed) {
  const rcb::BroadcastNParams params = rcb::BroadcastNParams::sim();
  rcb::SuffixBlockerAdversary adversary(rcb::Budget(1u << 16), q);
  rcb::Rng rng(seed);
  rcb::BroadcastNEngine engine(n, params);

  rcb::Table table({"epoch", "uninf", "inf", "helper", "term", "S min",
                    "S max", "mean cost", "T so far"});

  std::uint32_t reported_epoch = engine.epoch();
  auto report = [&](std::uint32_t epoch) {
    int counts[5] = {0, 0, 0, 0, 0};
    double s_min = 1e300, s_max = 0, cost_sum = 0;
    bool any_active = false;
    for (const auto& node : engine.nodes()) {
      ++counts[static_cast<int>(node.status)];
      cost_sum += static_cast<double>(node.cost);
      if (node.status != rcb::BroadcastStatus::kTerminated &&
          node.status != rcb::BroadcastStatus::kDead) {
        any_active = true;
        s_min = std::min(s_min, node.S);
        s_max = std::max(s_max, node.S);
      }
    }
    if (!any_active) s_min = s_max = 0;
    table.add_row(
        {rcb::Table::num(epoch), rcb::Table::num(counts[0]),
         rcb::Table::num(counts[1]), rcb::Table::num(counts[2]),
         rcb::Table::num(counts[3]), rcb::Table::num(s_min, 3),
         rcb::Table::num(s_max, 3), rcb::Table::num(cost_sum / n),
         rcb::Table::num(static_cast<double>(engine.adversary_cost()))});
  };

  while (engine.step(adversary, rng)) {
    if (engine.epoch() != reported_epoch) {
      report(reported_epoch);
      reported_epoch = engine.epoch();
    }
  }
  report(reported_epoch);
  table.print(std::cout);

  const auto result = engine.result();
  std::cout << "\ninformed " << result.informed_count << "/" << n
            << ", informed after " << result.informed_latency
            << " slots, all terminated after " << result.latency
            << " slots\n";
}

/// Renders one traced repetition as a strip chart.
void strip_chart(std::uint64_t seed) {
  std::cout << "\nChannel strip chart: 1 sender + 7 listeners, 128 slots, "
               "suffix jam from slot 64\n";
  std::cout << "legend: '.' idle  'm' message heard  '#' jammed  "
               "'*' collision\n\n";
  std::vector<rcb::NodeAction> actions = {
      rcb::NodeAction{0.25, rcb::Payload::kMessage, 0.0}};
  for (int u = 0; u < 7; ++u) {
    actions.push_back(rcb::NodeAction{0.02, rcb::Payload::kNoise, 0.3});
  }
  rcb::Trace trace;
  rcb::Rng rng(seed);
  const auto jam = rcb::JamSchedule::suffix(128, 64);
  rcb::run_repetition(128, actions, jam, rng, &trace);

  std::string strip(128, '.');
  for (const auto& ev : trace.events()) {
    char c = '.';
    if (jam.is_jammed(ev.slot)) {
      c = '#';
    } else if (ev.senders == 1) {
      c = 'm';
    } else if (ev.senders > 1) {
      c = '*';
    }
    strip[ev.slot] = c;
  }
  for (std::size_t i = 0; i < strip.size(); i += 64) {
    std::cout << strip.substr(i, 64) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 24;
  const double q = argc > 2 ? std::atof(argv[2]) : 0.9;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  std::cout << "Epoch-by-epoch Fig. 2 broadcast, n = " << n << ", q = " << q
            << "\n\n";
  narrated_run(n, q, seed);
  strip_chart(seed);
  return 0;
}
