// Jamming duel: Alice vs Bob vs an adversary, strategy by strategy.
//
//   $ ./jamming_duel [budget] [trials] [seed]
//
// Pits the Fig. 1 protocol and the KSY golden-ratio baseline against every
// 2-uniform adversary in the library at the same budget, and prints the
// resulting cost/delivery table — a compact view of Theorems 1 and 5.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>

#include "rcb/adversary/spoofing.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/stats/table.hpp"

namespace {

using AdversaryFactory = std::function<std::unique_ptr<rcb::DuelAdversary>()>;

struct Row {
  double alice = 0, bob = 0, t = 0, delivered = 0;
};

Row duel(bool use_ksy, const AdversaryFactory& make, int trials,
         std::uint64_t seed) {
  Row row;
  for (int t = 0; t < trials; ++t) {
    auto adv = make();
    rcb::Rng rng = rcb::Rng::stream(seed, t);
    rcb::OneToOneResult r;
    if (use_ksy) {
      rcb::KsyParams params;
      r = rcb::run_ksy(params, *adv, rng);
    } else {
      rcb::OneToOneParams params = rcb::OneToOneParams::sim(0.01);
      params.max_epoch = params.first_epoch() + 10;  // bound spoofing runs
      r = rcb::run_one_to_one(params, *adv, rng);
    }
    row.alice += static_cast<double>(r.alice_cost);
    row.bob += static_cast<double>(r.bob_cost);
    row.t += static_cast<double>(r.adversary_cost);
    row.delivered += r.delivered;
  }
  row.alice /= trials;
  row.bob /= trials;
  row.t /= trials;
  row.delivered /= trials;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const rcb::Cost budget =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 14);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  const std::pair<const char*, AdversaryFactory> adversaries[] = {
      {"none", [] { return std::make_unique<rcb::DuelNoJam>(); }},
      {"send-phase blocker q=0.6",
       [&] {
         return std::make_unique<rcb::SendPhaseBlocker>(rcb::Budget(budget),
                                                        0.6);
       }},
      {"nack-phase blocker q=0.6",
       [&] {
         return std::make_unique<rcb::NackPhaseBlocker>(rcb::Budget(budget),
                                                        0.6);
       }},
      {"full duel blocker q=0.6",
       [&] {
         return std::make_unique<rcb::FullDuelBlocker>(rcb::Budget(budget),
                                                       0.6);
       }},
      {"both-views blocker q=0.6",
       [&] {
         return std::make_unique<rcb::BothViewsSuffixBlocker>(
             rcb::Budget(budget), 0.6);
       }},
      {"random noise rate 0.3",
       [&] {
         return std::make_unique<rcb::SymmetricRandomDuelJammer>(
             rcb::Budget(budget), 0.3);
       }},
      {"nack spoofer (Thm 5)",
       [&] {
         return std::make_unique<rcb::SpoofingNackAdversary>(
             rcb::Budget(budget));
       }},
  };

  for (bool use_ksy : {false, true}) {
    std::cout << (use_ksy ? "\nKSY golden-ratio baseline"
                          : "Fig. 1 protocol (eps = 0.01)")
              << ", budget " << budget << ", " << trials << " trials\n\n";
    rcb::Table table({"adversary", "E[Alice]", "E[Bob]", "E[T spent]",
                      "delivery rate"});
    std::uint64_t s = seed;
    for (const auto& [name, make] : adversaries) {
      const Row row = duel(use_ksy, make, trials, s++);
      table.add_row({name, rcb::Table::num(row.alice),
                     rcb::Table::num(row.bob), rcb::Table::num(row.t),
                     rcb::Table::num(row.delivered, 3)});
    }
    table.print(std::cout);
  }
  std::cout << "\nNote the last row: spoofed nacks trap the Fig. 1 Alice "
               "(cost ~ T) but are ignored by KSY — Theorem 5's separation."
            << '\n';
  return 0;
}
