// Fault storm: graceful degradation and the crash-repro loop in one sitting.
//
// The paper's guarantees assume ideal devices.  This example layers the
// fault-injection subsystem (sim/faults.hpp) over the Fig. 2 broadcast and
// the Fig. 1 exchange and shows what "degrading gracefully" means here:
//
//   1. A fleet broadcast in which a fifth of the nodes crash permanently
//      mid-run — the survivors still terminate, the dead are *reported*.
//   2. The same fleet under crash/restart churn plus message loss and
//      clock skew: slower and costlier, but still correct.
//   3. A 1-to-1 exchange against a jammer that never runs out, cut off by
//      the wall-clock timeout and reported as Aborted instead of spinning.
//
// Finally it demonstrates the repro loop end to end: every trial here is a
// pure function of (scenario JSON, trial index), so the printed scenario
// line can be replayed bit-identically with tools/rcb_replay.
//
//   $ ./fault_storm [fleet_size] [seed]
#include <cstdlib>
#include <iostream>

#include "rcb/runtime/scenario.hpp"

int main(int argc, char** argv) {
  const std::uint32_t fleet =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // -- 1: permanent crashes ------------------------------------------------
  rcb::Scenario crash;
  crash.protocol = "broadcast";
  crash.adversary = "none";
  crash.n = fleet;
  crash.seed = seed;
  crash.faults.seed = seed + 1;
  crash.faults.crash_rate = 0.001;     // eligible nodes die early...
  crash.faults.crash_fraction = 0.2;   // ...but only a fifth are eligible
  std::cout << "1. Broadcast, " << fleet << " nodes, 20% crash permanently:\n";
  {
    const rcb::TrialOutcome o = rcb::run_scenario_trial(crash, 0);
    std::cout << "   crashed " << o.crashed_count << "/" << fleet
              << ", survivors terminated after " << o.latency
              << " slots at mean cost " << o.mean_cost << "\n\n";
  }

  // -- 2: churn + channel faults -------------------------------------------
  rcb::Scenario storm = crash;
  storm.faults.restart_rate = 0.002;   // outages end; nodes rejoin
  storm.faults.crash_fraction = 0.5;
  storm.faults.loss_rate = 0.1;        // m fades to silence 10% of the time
  storm.faults.clock_skew_rate = 0.05; // some nodes desync for whole phases
  std::cout << "2. Same fleet under churn + 10% loss + clock skew:\n";
  {
    const rcb::TrialOutcome o = rcb::run_scenario_trial(storm, 0);
    std::cout << "   informed all live nodes: " << (o.success ? "yes" : "no")
              << ", latency " << o.latency << " slots, mean cost "
              << o.mean_cost << " (vs " << "calm above)\n\n";
  }

  // -- 3: timeout under permanent jamming ----------------------------------
  rcb::Scenario duel;
  duel.protocol = "one_to_one";
  duel.adversary = "full_duel";
  duel.budget = rcb::Cost{1} << 40;    // effectively unbounded jammer
  duel.q = 1.0;
  duel.seed = seed;
  duel.timeout_slots = 1u << 14;
  std::cout << "3. 1-to-1 vs an unbounded jammer, timeout 2^14 slots:\n";
  {
    const rcb::TrialOutcome o = rcb::run_scenario_trial(duel, 0);
    std::cout << "   aborted: " << (o.aborted ? "yes" : "no")
              << " after " << o.latency << " slots, max cost " << o.max_cost
              << " (a bounded bill instead of an endless escalation)\n\n";
  }

  // -- the repro loop -------------------------------------------------------
  std::cout << "Every trial above is a pure function of (scenario, trial).\n"
            << "Replay trial 0 of the storm bit-identically with:\n\n"
            << "  echo '{\"rcb_repro\":1,\"master_seed\":" << storm.seed
            << ",\"trial\":0,\"scenario\":" << rcb::scenario_to_json(storm)
            << "}' | ./tools/rcb_replay --record - --verify\n\n";
  const std::uint64_t digest = rcb::run_scenario_trial(storm, 0).digest;
  std::cout << "Expected digest: " << std::hex << digest << std::dec << "\n";
  return 0;
}
