// Sensor fleet scenario: the workload the paper's introduction motivates.
//
// A base station must push a (signed) firmware-revocation notice to a fleet
// of battery-powered sensors while an attacker with a finite energy budget
// tries to suppress it.  The question a deployment engineer asks is the
// resource-competitive one: for every joule the attacker burns, how much of
// the fleet's battery does the defence burn?
//
//   $ ./sensor_fleet [fleet_size] [attacker_budget] [seed]
//
// Prints the per-node energy distribution, the attack economics, and how
// both change as the fleet scales up.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/stats/histogram.hpp"
#include "rcb/stats/summary.hpp"
#include "rcb/stats/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t fleet =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const rcb::Cost budget =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1u << 17);
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const rcb::BroadcastNParams params = rcb::BroadcastNParams::sim();

  std::cout << "Sensor fleet: " << fleet << " nodes, attacker budget "
            << budget << " slot-units\n\n";

  rcb::SuffixBlockerAdversary attacker(rcb::Budget(budget), /*q=*/0.9);
  rcb::Rng rng(seed);
  const rcb::BroadcastNResult r =
      rcb::run_broadcast_n(fleet, params, attacker, rng);

  std::vector<double> costs;
  for (const auto& node : r.nodes) {
    costs.push_back(static_cast<double>(node.cost));
  }
  const rcb::Summary s = rcb::summarize(costs);

  std::cout << "Delivery: " << r.informed_count << "/" << r.n
            << " sensors informed, all terminated: "
            << (r.all_terminated ? "yes" : "no") << "\n\n";

  rcb::Table energy({"metric", "slot-units"});
  energy.add_row({"attacker spent (T)",
                  rcb::Table::num(static_cast<double>(r.adversary_cost))});
  energy.add_row({"node energy, mean", rcb::Table::num(s.mean)});
  energy.add_row({"node energy, median", rcb::Table::num(s.median)});
  energy.add_row({"node energy, p90", rcb::Table::num(s.p90)});
  energy.add_row({"node energy, max", rcb::Table::num(s.max)});
  energy.print(std::cout);

  std::cout << "\nPer-sensor energy distribution (fairness — Theorem 4's "
               "'fair algorithm' notion in practice):\n\n";
  rcb::Histogram hist(costs, 10);
  hist.print(std::cout);

  rcb::Rng boot_rng(seed + 1);
  const rcb::BootstrapCi ci = rcb::bootstrap_mean_ci(costs, 2000, 0.05, boot_rng);
  std::cout << "\nmean energy 95% bootstrap CI: [" << rcb::Table::num(ci.lo)
            << ", " << rcb::Table::num(ci.hi) << "]\n";

  const double t = static_cast<double>(r.adversary_cost);
  if (t > 0) {
    std::cout << "\nAttack economics: the attacker paid "
              << rcb::Table::num(t / std::max(1.0, s.max), 3)
              << "x the worst-off sensor's spend and "
              << rcb::Table::num(t / std::max(1.0, s.mean), 3)
              << "x the average sensor's spend.\n";
  }

  // Scale-out comparison: same attacker, fleets of 2x and 4x the size.
  std::cout << "\nScale-out (same attacker budget):\n\n";
  rcb::Table scale({"fleet size", "mean node energy", "attacker/mean ratio"});
  for (std::uint32_t n : {fleet, fleet * 2, fleet * 4}) {
    rcb::SuffixBlockerAdversary a2(rcb::Budget(budget), 0.9);
    rcb::Rng rng2(seed + n);
    const auto r2 = rcb::run_broadcast_n(n, params, a2, rng2);
    const double t2 = static_cast<double>(r2.adversary_cost);
    scale.add_row({rcb::Table::num(n), rcb::Table::num(r2.mean_cost),
                   rcb::Table::num(t2 / std::max(1.0, r2.mean_cost), 3)});
  }
  scale.print(std::cout);
  std::cout << "\nBigger fleets dilute the defence cost (~sqrt(T/n) per "
               "node) while the attack stays equally expensive.\n";
  return 0;
}
